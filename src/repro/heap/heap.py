"""The simulated heap: object table, allocation clock, and space registry.

:class:`SimulatedHeap` owns every object and every space.  It provides
word-accurate allocation (advancing an allocation clock that the whole
reproduction uses as its notion of time, exactly as the paper measures
time "by the number of objects that have been allocated" — here
generalized to words), object movement between spaces, field reads and
writes, and reachability tracing.

The heap knows nothing about collection policy; collectors are built on
top of it in :mod:`repro.gc`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator

from repro.heap.object_model import HeapObject
from repro.heap.space import Space, SpaceFull

__all__ = ["HeapError", "SimulatedHeap"]


class HeapError(Exception):
    """Structural misuse of the simulated heap (dangling ids, bad slots)."""


class SimulatedHeap:
    """A word-accurate simulated heap (the *object* backend).

    One Python :class:`~repro.heap.object_model.HeapObject` per heap
    object.  The struct-of-arrays alternative is
    :class:`repro.heap.flat.FlatHeap`; both implement the same public
    surface plus the shared collection kernels (``trace_region``,
    ``cheney_evacuate``, ``free_unmarked``, ...), which is what lets
    the five collectors run unmodified on either backend.

    Attributes:
        clock: total words allocated so far — the reproduction's time
            axis.  Never decreases.
        objects_allocated: count of allocation events.
        checked: when true, :meth:`write_slot` probes every stored
            reference against the object table and rejects dangling
            ids.  Off by default: the probe costs a dict lookup on
            *every* pointer store, and a correct mutator never stores a
            dangling id.  Checked mode (``repro-gc verify``, the heap
            auditor) turns it on; ``check_integrity`` catches dangling
            slots after the fact either way.
    """

    backend_name = "object"

    __slots__ = (
        "_objects",
        "_spaces",
        "_next_id",
        "_colors",
        "clock",
        "objects_allocated",
        "checked",
        "event_sink",
    )

    def __init__(self, *, checked: bool = False) -> None:
        self._objects: dict[int, HeapObject] = {}
        self._spaces: dict[str, Space] = {}
        self._next_id = 0
        #: Tri-color mark state for the incremental collector; absent
        #: ids are white.  Reset per mark epoch, never on allocation —
        #: objects born inside an epoch are classified by birth clock,
        #: so the allocation hot path stays untouched.
        self._colors: dict[int, int] = {}
        self.clock = 0
        self.objects_allocated = 0
        self.checked = checked
        #: Optional telemetry sink (:class:`repro.metrics.EventStream`).
        #: ``None`` — the default — emits nothing; geometry changes
        #: (space creation/removal) are cold paths, so the guard costs
        #: nothing on allocation.
        self.event_sink = None

    # ------------------------------------------------------------------
    # Spaces
    # ------------------------------------------------------------------

    def add_space(self, name: str, capacity: int | None) -> Space:
        """Create and register a new space."""
        if name in self._spaces:
            raise ValueError(f"space {name!r} already exists")
        space = Space(name, capacity)
        self._spaces[name] = space
        if self.event_sink is not None:
            self.event_sink.emit(
                "space-created", space=name, capacity=capacity
            )
        return space

    def remove_space(self, space: Space) -> None:
        """Unregister an empty space."""
        if not space.is_empty():
            raise HeapError(f"cannot remove non-empty space {space.name!r}")
        if self._spaces.get(space.name) is not space:
            raise KeyError(f"space {space.name!r} is not registered")
        del self._spaces[space.name]
        if self.event_sink is not None:
            self.event_sink.emit("space-removed", space=space.name)

    def space(self, name: str) -> Space:
        try:
            return self._spaces[name]
        except KeyError:
            raise KeyError(f"no space named {name!r}") from None

    def spaces(self) -> Iterator[Space]:
        return iter(self._spaces.values())

    # ------------------------------------------------------------------
    # Objects
    # ------------------------------------------------------------------

    @property
    def object_count(self) -> int:
        return len(self._objects)

    @property
    def live_words(self) -> int:
        """Total words occupied by resident objects across all spaces.

        "Live" here means *resident*: garbage not yet collected still
        counts, exactly as it occupies memory in a real heap.
        """
        return sum(space.used for space in self._spaces.values())

    def allocate(
        self,
        size: int,
        field_count: int,
        space: Space,
        kind: str = "data",
        *,
        advance_clock: bool = True,
    ) -> HeapObject:
        """Allocate a new object in ``space`` and advance the clock.

        Static-area allocation (interned symbols, constants) passes
        ``advance_clock=False`` so that the time axis counts dynamic
        allocation only, as the paper's measurements do.

        Raises:
            SpaceFull: if the space lacks room; the clock is *not*
                advanced in that case, so a collector may retry after
                collecting.
        """
        capacity = space.capacity
        if capacity is not None and space.used + size > capacity:
            raise SpaceFull(space, size)
        obj_id = self._next_id
        obj = HeapObject(obj_id, size, field_count, self.clock, kind)
        self._next_id = obj_id + 1
        self._objects[obj_id] = obj
        space._objects[obj_id] = obj
        space.used += size
        obj.space = space
        if advance_clock:
            self.clock += size
            self.objects_allocated += 1
        return obj

    def allocate_id(
        self,
        size: int,
        field_count: int,
        space: Space,
        kind: str = "data",
        *,
        advance_clock: bool = True,
    ) -> int:
        """Allocate and return the raw id (see :meth:`allocate`)."""
        return self.allocate(
            size, field_count, space, kind, advance_clock=advance_clock
        ).obj_id

    def bulk_allocate(self, count: int, size: int, space: Space) -> tuple[int, int]:
        """Allocate ``count`` field-less ``data`` objects.

        Returns the half-open id range.  The flat backend materializes
        the range at C speed; here it is a plain loop — the caller (a
        collector allocation window) has already reserved capacity.
        """
        if count <= 0:
            raise ValueError(f"window must cover >= 1 object, got {count!r}")
        first = self._next_id
        for _ in range(count):
            self.allocate(size, 0, space)
        return first, first + count

    def free(self, obj: HeapObject) -> None:
        """Remove a dead object from the heap entirely."""
        if self._objects.pop(obj.obj_id, None) is None:
            raise HeapError(f"object {obj.obj_id} is not in the heap")
        space = obj.space
        if space is not None:
            del space._objects[obj.obj_id]
            space.used -= obj.size
            obj.space = None

    def move(self, obj: HeapObject, to_space: Space) -> None:
        """Move an object between spaces (the simulator's "copy")."""
        obj_id = obj.obj_id
        if obj_id not in self._objects:
            raise HeapError(f"object {obj_id} is not in the heap")
        from_space = obj.space
        if from_space is to_space:
            return
        size = obj.size
        capacity = to_space.capacity
        if capacity is not None and to_space.used + size > capacity:
            raise SpaceFull(to_space, size)
        if from_space is not None:
            del from_space._objects[obj_id]
            from_space.used -= size
        to_space._objects[obj_id] = obj
        to_space.used += size
        obj.space = to_space

    def get(self, obj_id: int) -> HeapObject:
        """Resolve an object id; dangling ids are a structural error."""
        try:
            return self._objects[obj_id]
        except KeyError:
            raise HeapError(f"dangling object id {obj_id}") from None

    def contains_id(self, obj_id: int) -> bool:
        return obj_id in self._objects

    def all_objects(self) -> Iterator[HeapObject]:
        return iter(self._objects.values())

    def resident_words(self, spaces: Iterable[Space]) -> int:
        """Total words occupied across the given spaces."""
        return sum(space.used for space in spaces)

    def dangling_ids(self, ids: Iterable[int]) -> list[int]:
        """The subset of ``ids`` that do not resolve to a live object.

        Used by the heap auditor to report dangling roots precisely
        instead of crashing on the first :meth:`get`.
        """
        return [obj_id for obj_id in ids if obj_id not in self._objects]

    def occupancy(self) -> dict:
        """A JSON-able per-space occupancy snapshot for diagnostics.

        :class:`~repro.gc.collector.HeapExhausted` attaches this so a
        workload that dies near the ``n ≈ h/ln 2`` equilibrium reports
        *where* the words went instead of just that they ran out.
        """
        return {
            "clock": self.clock,
            "objects_allocated": self.objects_allocated,
            "object_count": len(self._objects),
            "live_words": self.live_words,
            "spaces": [
                {
                    "name": space.name,
                    "used": space.used,
                    "capacity": space.capacity,
                    "free": None if space.capacity is None else space.free,
                    "objects": space.object_count,
                }
                for space in self._spaces.values()
            ],
        }

    # ------------------------------------------------------------------
    # Fields
    # ------------------------------------------------------------------

    def read_field(self, obj: HeapObject, slot: int) -> HeapObject | None:
        """Read a reference slot, resolving it to an object (or None).

        Raises on a slot holding an immediate; use :meth:`read_slot`
        for untyped access.
        """
        ref = self.read_slot(obj, slot)
        if ref is None:
            return None
        if type(ref) is not int:
            raise HeapError(
                f"slot {slot} of object {obj.obj_id} holds an immediate, "
                f"not a reference"
            )
        return self.get(ref)

    def read_slot(self, obj: HeapObject, slot: int) -> object:
        """Read a slot's raw value: an id, None, or an immediate."""
        try:
            return obj.fields[slot]
        except IndexError:
            raise HeapError(
                f"object {obj.obj_id} has no slot {slot} "
                f"(it has {len(obj.fields)})"
            ) from None

    def write_field(
        self, obj: HeapObject, slot: int, target: HeapObject | None
    ) -> None:
        """Write a reference slot (raw — no write barrier).

        Collector-aware code goes through
        :meth:`repro.runtime.machine.Machine.write_field`, which applies
        the write barrier before delegating here.
        """
        self.write_slot(obj, slot, None if target is None else target.obj_id)

    def write_slot(self, obj: HeapObject, slot: int, value: object) -> None:
        """Write a slot's raw value: an id, None, or an immediate.

        In :attr:`checked` mode, a stored reference is probed against
        the object table so dangling stores fail at the store site;
        otherwise they surface later via :meth:`check_integrity` or a
        dangling :meth:`get`.
        """
        if slot < 0 or slot >= len(obj.fields):
            raise HeapError(
                f"object {obj.obj_id} has no slot {slot} "
                f"(it has {len(obj.fields)})"
            )
        if (
            self.checked
            and type(value) is int
            and value not in self._objects
        ):
            raise HeapError(f"cannot store dangling object id {value}")
        obj.fields[slot] = value

    # ------------------------------------------------------------------
    # Id-level accessors (shared kernel surface)
    # ------------------------------------------------------------------

    def size_of(self, oid: int) -> int:
        return self._objects[oid].size

    def birth_of(self, oid: int) -> int:
        return self._objects[oid].birth

    def slot_count_of(self, oid: int) -> int:
        return len(self._objects[oid].fields)

    def slots_of(self, oid: int) -> list[object]:
        """A snapshot copy of the object's raw slot values."""
        return list(self._objects[oid].fields)

    def ref_slots(self, oid: int) -> list[tuple[int, int]]:
        """``(slot, ref_id)`` pairs for reference-holding slots."""
        return [
            (slot, ref)
            for slot, ref in enumerate(self._objects[oid].fields)
            if type(ref) is int
        ]

    def space_if_live(self, oid: int) -> Space | None:
        """The space of ``oid``, or None if freed/detached/dangling."""
        obj = self._objects.get(oid)
        return None if obj is None else obj.space

    def slot_ref(self, obj_id: int, slot: int) -> tuple[Space, int] | None:
        """``(source_space, ref_id)`` for a remset probe, else None.

        None when the source is dead/detached, the slot is out of
        range, or the slot holds a non-reference.
        """
        obj = self._objects.get(obj_id)
        if obj is None or obj.space is None:
            return None
        fields = obj.fields
        if slot >= len(fields):
            return None
        ref = fields[slot]
        if type(ref) is not int:
            return None
        return obj.space, ref

    # ------------------------------------------------------------------
    # Tri-color mark state (incremental collector)
    # ------------------------------------------------------------------

    def begin_mark_epoch(self) -> None:
        """Reset every object's mark color to white (0).

        The incremental collector calls this when it opens a mark
        cycle; colors written before the call are stale and discarded.
        """
        self._colors.clear()

    def color_of(self, oid: int) -> int:
        """The object's mark color: 0 white, 1 gray, 2 black."""
        return self._colors.get(oid, 0)

    def set_color(self, oid: int, color: int) -> None:
        self._colors[oid] = color

    def drain_gray(
        self,
        gray: list[int],
        space: Space,
        epoch: int,
        limit: int | None = None,
    ) -> int:
        """Scan gray objects until the wavefront drains or ``limit``
        words have been examined; returns the words scanned.

        Object-backend twin of :meth:`repro.heap.flat.FlatHeap.drain_gray`
        — same pop/skip/blacken/gray-white-pre-epoch-referents loop, with
        the dict lookups hoisted.  Colors: 0 white, 1 gray, 2 black.
        """
        objects = self._objects
        colors = self._colors
        color_get = colors.get
        obj_get = objects.get
        pop = gray.pop
        push = gray.append
        work = 0
        while gray and (limit is None or work < limit):
            oid = pop()
            if color_get(oid, 0) != 1:
                continue  # conservative duplicate entry; already scanned
            colors[oid] = 2
            obj = objects[oid]
            for ref in obj.fields:
                if type(ref) is int:
                    target = obj_get(ref)
                    if target is None:
                        raise HeapError(f"dangling object id {ref}")
                    if (
                        target.space is space
                        and target.birth < epoch
                        and color_get(ref, 0) == 0
                    ):
                        colors[ref] = 1
                        push(ref)
            work += obj.size
        return work

    def survivor_ids(self, space: Space, epoch: int) -> set[int]:
        """Resident ids that survive a tri-color sweep: colored
        non-white, or born at/after the mark epoch."""
        colors = self._colors
        color_get = colors.get
        return {
            oid
            for oid, obj in space._objects.items()
            if color_get(oid, 0) or obj.birth >= epoch
        }

    def export_mark_snapshot(
        self, space: Space, root_ids: Iterable[int]
    ) -> dict:
        """Package the reachability-relevant heap state for an
        off-process marker (:mod:`repro.gc.concurrent`).

        The object backend has no arenas to memcpy, so this is the
        pickle fallback: a plain dict of ``oid -> (size, ref_ids)`` for
        the space's residents, plus the set of all known ids so the
        marker can distinguish a boundary reference (skip) from a
        dangling one (raise) exactly like the in-process trace.
        """
        objects = {}
        for oid, obj in self._objects.items():
            if obj.space is space:
                objects[oid] = (
                    obj.size,
                    tuple(ref for ref in obj.fields if type(ref) is int),
                )
        return {
            "backend": "object",
            "objects": objects,
            "known": frozenset(self._objects),
            "roots": list(root_ids),
        }

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """A complete, JSON-serializable image of the heap.

        Everything behaviorally observable is captured in order: the
        global object table (iteration order is visible through
        ``all_objects``), each space's resident order, every slot value
        (ids, None, and JSON-representable immediates), birth clocks,
        and the tri-color mark state of an open cycle.  Restoring the
        image with :meth:`import_state` onto a heap with the same
        spaces reproduces the original byte for byte.
        """
        objects = []
        for obj in self._objects.values():
            record: dict = {
                "id": obj.obj_id,
                "size": obj.size,
                "birth": obj.birth,
                "kind": obj.kind,
                "space": None if obj.space is None else obj.space.name,
                "fields": list(obj.fields),
            }
            if obj.payload is not None:
                record["payload"] = obj.payload
            objects.append(record)
        return {
            "backend": "object",
            "clock": self.clock,
            "objects_allocated": self.objects_allocated,
            "next_id": self._next_id,
            "colors": sorted(
                [oid, color] for oid, color in self._colors.items() if color
            ),
            "spaces": [
                {
                    "name": space.name,
                    "capacity": space.capacity,
                    "used": space.used,
                    "ids": list(space._objects),
                }
                for space in self._spaces.values()
            ],
            "objects": objects,
        }

    def import_state(self, state: dict) -> None:
        """Replace the heap's contents with an exported image.

        The heap must already hold spaces with exactly the snapshot's
        names (a freshly constructed collector recreates them); their
        capacities and residents are overwritten in snapshot order.
        """
        if state.get("backend") != "object":
            raise HeapError(
                f"snapshot backend {state.get('backend')!r} cannot restore "
                f"into an object heap"
            )
        by_name = {space.name: space for space in self._spaces.values()}
        snapshot_names = {entry["name"] for entry in state["spaces"]}
        if set(by_name) != snapshot_names:
            raise HeapError(
                f"snapshot spaces {sorted(snapshot_names)} do not match "
                f"this heap's spaces {sorted(by_name)}"
            )
        self.clock = state["clock"]
        self.objects_allocated = state["objects_allocated"]
        self._next_id = state["next_id"]
        self._colors = {
            int(oid): int(color) for oid, color in state["colors"]
        }
        self._objects = {}
        for record in state["objects"]:
            obj = HeapObject(
                record["id"],
                record["size"],
                0,
                record["birth"],
                record["kind"],
            )
            obj.fields = list(record["fields"])
            obj.payload = record.get("payload")
            self._objects[obj.obj_id] = obj
        for entry in state["spaces"]:
            space = by_name[entry["name"]]
            space.capacity = entry["capacity"]
            space._objects = {}
            used = 0
            for oid in entry["ids"]:
                obj = self._objects[oid]
                space._objects[oid] = obj
                obj.space = space
                used += obj.size
            if used != entry["used"]:
                raise HeapError(
                    f"snapshot space {space.name!r} accounting off: "
                    f"recorded {entry['used']}, residents sum to {used}"
                )
            space.used = used

    def place_id(self, oid: int, space: Space, size: int | None = None) -> None:
        """Attach a detached object to ``space`` (no capacity check)."""
        obj = self._objects[oid]
        space._objects[oid] = obj
        space.used += obj.size if size is None else size
        obj.space = space

    def move_ids(self, oids: Iterable[int], target: Space) -> int:
        """Move resident objects to ``target`` (no capacity check).

        Returns the words moved; source-space occupancy is updated.
        """
        objects = self._objects
        target_objects = target._objects
        moved = 0
        for oid in oids:
            obj = objects[oid]
            source = obj.space
            size = obj.size
            if source is not None:
                del source._objects[oid]
                source.used -= size
            target_objects[oid] = obj
            obj.space = target
            moved += size
        target.used += moved
        return moved

    def count_slot_refs_into(
        self, oids: Iterable[int], spaces: "set[Space]"
    ) -> int:
        """Count reference slots of ``oids`` that point into ``spaces``."""
        objects = self._objects
        total = 0
        for oid in oids:
            for ref in objects[oid].fields:
                if type(ref) is not int:
                    continue
                try:
                    target = objects[ref]
                except KeyError:
                    raise HeapError(f"dangling object id {ref}") from None
                if target.space in spaces:
                    total += 1
        return total

    # ------------------------------------------------------------------
    # Collection kernels
    # ------------------------------------------------------------------

    def trace_region(
        self, region: Iterable[Space], seed_ids: Iterable[int]
    ) -> tuple[set[int], int]:
        """Mark the closure of ``seed_ids`` restricted to ``region``.

        Returns ``(marked_ids, words_marked)``.  References leaving the
        region are not followed; dangling seeds or slots raise
        :class:`HeapError`.
        """
        if not isinstance(region, (set, frozenset)):
            region = set(region)
        objects = self._objects
        marked: set[int] = set()
        mark = marked.add
        stack: list[int] = []
        push = stack.append
        pop = stack.pop
        words = 0
        for oid in seed_ids:
            if oid not in marked:
                try:
                    obj = objects[oid]
                except KeyError:
                    raise HeapError(f"dangling object id {oid}") from None
                if obj.space in region:
                    mark(oid)
                    push(oid)
        while stack:
            oid = pop()
            obj = objects[oid]
            words += obj.size
            for ref in obj.fields:
                if type(ref) is int and ref not in marked:
                    try:
                        target = objects[ref]
                    except KeyError:
                        raise HeapError(
                            f"dangling object id {ref}"
                        ) from None
                    if target.space in region:
                        mark(ref)
                        push(ref)
        return marked, words

    def cheney_evacuate(
        self,
        from_space: Space,
        to_space: Space,
        root_ids: Iterable[int],
    ) -> tuple[int, int]:
        """Copy the live closure out of ``from_space`` into ``to_space``.

        Breadth-first (Cheney order), abandoning everything left in
        ``from_space`` afterwards.  Returns ``(words_copied,
        words_reclaimed)``; occupancies are updated and ``from_space``
        is left empty.
        """
        objects = self._objects
        condemned = from_space._objects
        survivors = to_space._objects
        copied: set[int] = set()
        mark = copied.add
        queue: deque[int] = deque()
        push = queue.append
        pop = queue.popleft
        work = 0
        for oid in root_ids:
            if oid in copied:
                continue
            try:
                obj = objects[oid]
            except KeyError:
                raise HeapError(f"dangling object id {oid}") from None
            if obj.space is not from_space:
                continue
            del condemned[oid]
            survivors[oid] = obj
            obj.space = to_space
            mark(oid)
            push(oid)
            work += obj.size
        while queue:
            oid = pop()
            for ref in objects[oid].fields:
                if type(ref) is int and ref not in copied:
                    try:
                        target = objects[ref]
                    except KeyError:
                        raise HeapError(
                            f"dangling object id {ref}"
                        ) from None
                    if target.space is from_space:
                        del condemned[ref]
                        survivors[ref] = target
                        target.space = to_space
                        mark(ref)
                        push(ref)
                        work += target.size
        reclaimed = 0
        for obj in condemned.values():
            reclaimed += obj.size
            obj.space = None
            del objects[obj.obj_id]
        condemned.clear()
        from_space.used = 0
        to_space.used += work
        return work, reclaimed

    def free_unmarked(self, space: Space, marked: "set[int]") -> int:
        """Sweep ``space`` in place, freeing unmarked objects.

        Returns words reclaimed; survivors keep their relative order.
        """
        objects = self._objects
        space_objects = space._objects
        dead = [
            obj for obj in space_objects.values() if obj.obj_id not in marked
        ]
        reclaimed = 0
        for obj in dead:
            oid = obj.obj_id
            del objects[oid]
            del space_objects[oid]
            obj.space = None
            reclaimed += obj.size
        space.used -= reclaimed
        return reclaimed

    def partition_space(
        self, space: Space, marked: "set[int]"
    ) -> tuple[list[int], int]:
        """Free dead objects; return surviving ids in space order.

        Survivors remain resident in ``space``.
        """
        objects = self._objects
        space_objects = space._objects
        survivors: list[int] = []
        dead: list[HeapObject] = []
        for obj in space_objects.values():
            if obj.obj_id in marked:
                survivors.append(obj.obj_id)
            else:
                dead.append(obj)
        reclaimed = 0
        for obj in dead:
            oid = obj.obj_id
            del objects[oid]
            del space_objects[oid]
            obj.space = None
            reclaimed += obj.size
        space.used -= reclaimed
        return survivors, reclaimed

    def extract_live(
        self, space: Space, marked: "set[int]"
    ) -> tuple[list[int], int]:
        """Empty ``space``: free the dead, detach survivors in order.

        Returns ``(survivor_ids, words_reclaimed)``; survivors are left
        detached for the caller to repack.
        """
        objects = self._objects
        space_objects = space._objects
        survivors: list[int] = []
        reclaimed = 0
        for obj in list(space_objects.values()):
            if obj.obj_id in marked:
                obj.space = None
                survivors.append(obj.obj_id)
            else:
                del objects[obj.obj_id]
                obj.space = None
                reclaimed += obj.size
        space_objects.clear()
        space.used = 0
        return survivors, reclaimed

    def extract_all(self, space: Space) -> list[int]:
        """Detach every resident of ``space`` in order (compaction)."""
        out: list[int] = []
        for obj in space._objects.values():
            obj.space = None
            out.append(obj.obj_id)
        space._objects.clear()
        space.used = 0
        return out

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------

    def reachable_from(
        self,
        root_ids: Iterable[int],
        *,
        visit: Callable[[HeapObject], None] | None = None,
    ) -> set[int]:
        """Transitive closure of the reference graph from the given roots.

        Args:
            root_ids: seed object ids (dangling ids are an error — a
                root must never point at a freed object).
            visit: optional callback invoked once per reached object,
                in discovery order; used by collectors to account for
                marking work.

        Returns:
            The set of reached object ids.
        """
        objects = self._objects
        reached: set[int] = set()
        add = reached.add
        stack: list[int] = []
        push = stack.append
        pop = stack.pop
        for obj_id in root_ids:
            if obj_id not in reached:
                add(obj_id)
                push(obj_id)
        while stack:
            obj_id = pop()
            try:
                obj = objects[obj_id]
            except KeyError:
                raise HeapError(f"dangling object id {obj_id}") from None
            if visit is not None:
                visit(obj)
            for ref in obj.fields:
                if type(ref) is int and ref not in reached:
                    add(ref)
                    push(ref)
        return reached

    def check_integrity(self) -> None:
        """Validate structural invariants; raises HeapError on violation.

        Checks that every object belongs to exactly the space that
        claims it, that space occupancy matches resident object sizes,
        and that no reference slot dangles.  Intended for tests and
        debugging; O(heap size).
        """
        seen: set[int] = set()
        for space in self._spaces.values():
            used = 0
            for obj in space.objects():
                if obj.obj_id in seen:
                    raise HeapError(
                        f"object {obj.obj_id} resides in two spaces"
                    )
                seen.add(obj.obj_id)
                if obj.space is not space:
                    raise HeapError(
                        f"object {obj.obj_id} back-pointer disagrees with "
                        f"space {space.name!r}"
                    )
                if obj.obj_id not in self._objects:
                    raise HeapError(
                        f"space {space.name!r} holds freed object "
                        f"{obj.obj_id}"
                    )
                used += obj.size
            if used != space.used:
                raise HeapError(
                    f"space {space.name!r} accounting off: tracked "
                    f"{space.used}, actual {used}"
                )
        for obj in self._objects.values():
            if obj.obj_id not in seen:
                raise HeapError(f"object {obj.obj_id} is in no space")
            for ref in obj.references():
                if ref not in self._objects:
                    raise HeapError(
                        f"object {obj.obj_id} points at freed object {ref}"
                    )
