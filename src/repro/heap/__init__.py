"""The simulated memory system: objects, spaces, roots, remembered sets."""

from repro.heap.barrier import WriteBarrier
from repro.heap.heap import HeapError, SimulatedHeap
from repro.heap.object_model import NULL_REF, HeapObject
from repro.heap.remset import RememberedSet, SlotRef
from repro.heap.roots import Frame, RootSet
from repro.heap.space import Space, SpaceFull

__all__ = [
    "NULL_REF",
    "Frame",
    "HeapError",
    "HeapObject",
    "RememberedSet",
    "RootSet",
    "SimulatedHeap",
    "SlotRef",
    "Space",
    "SpaceFull",
    "WriteBarrier",
]
