"""The simulated memory system: objects, spaces, roots, remembered sets."""

from repro.heap.backend import (
    DEFAULT_BACKEND,
    HEAP_BACKENDS,
    default_backend_name,
    make_heap,
    resolve_backend_name,
)
from repro.heap.barrier import WriteBarrier
from repro.heap.flat import FlatHeap, FlatObject, FlatSpace
from repro.heap.heap import HeapError, SimulatedHeap
from repro.heap.object_model import NULL_REF, HeapObject
from repro.heap.remset import RememberedSet, SlotRef
from repro.heap.roots import Frame, RootSet
from repro.heap.space import Space, SpaceFull

__all__ = [
    "DEFAULT_BACKEND",
    "HEAP_BACKENDS",
    "NULL_REF",
    "FlatHeap",
    "FlatObject",
    "FlatSpace",
    "Frame",
    "HeapError",
    "HeapObject",
    "RememberedSet",
    "RootSet",
    "SimulatedHeap",
    "SlotRef",
    "Space",
    "SpaceFull",
    "WriteBarrier",
    "default_backend_name",
    "make_heap",
    "resolve_backend_name",
]
