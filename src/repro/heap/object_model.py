"""Heap objects for the simulated memory system.

A :class:`HeapObject` models one allocated object: an integer identity,
a size in words, an ordered list of reference slots, and bookkeeping
(birth time in allocation-clock words, the space it currently resides
in, and a small kind tag used by the Scheme-ish runtime layer).

References between objects are stored as integer object ids rather than
Python references.  This keeps the simulated object graph explicit and
fully owned by the :class:`~repro.heap.heap.SimulatedHeap`: reachability
is whatever the simulated graph says, never what CPython's own GC
happens to keep alive.

A slot may also hold an *immediate*: any value that is not an ``int``
and not ``None`` (the Scheme-ish runtime stores booleans, characters,
and wrapped fixnums this way, mirroring tagged immediates in a real
implementation).  Immediates are opaque to the garbage collector;
:func:`is_ref` is the single tagging predicate every tracing loop uses.
Note that ``bool`` is excluded deliberately (``type(v) is int`` is
false for ``True``), so booleans can be stored raw.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.heap.space import Space

__all__ = ["HeapObject", "NULL_REF", "SlotValue", "is_ref"]

#: The null reference: a slot holding this points at nothing.
NULL_REF: int | None = None

#: What a slot may hold: a reference (int id), null, or an immediate.
SlotValue = object


def is_ref(value: SlotValue) -> bool:
    """Whether a slot value is an object reference (an id, not a bool)."""
    return type(value) is int


class HeapObject:
    """One object in the simulated heap.

    Attributes:
        obj_id: unique non-negative identity, assigned by the heap and
            never reused.
        size: size in words; at least 1 (every object has a header).
        fields: mutable list of reference slots, each an object id or
            ``None``.  Non-reference payload (e.g. the bits of a
            flonum) is represented only by ``size``.
        birth: value of the heap's allocation clock when this object
            was allocated.
        space: the space the object currently resides in (maintained by
            the heap; ``None`` only transiently during moves).
        kind: small tag used by the runtime layer ("pair", "vector",
            "flonum", ...); plain "data" for anonymous objects.
    """

    __slots__ = ("obj_id", "size", "fields", "birth", "space", "kind", "payload")

    def __init__(
        self,
        obj_id: int,
        size: int,
        field_count: int,
        birth: int,
        kind: str = "data",
    ) -> None:
        if size < 1:
            raise ValueError(f"object size must be at least 1 word, got {size!r}")
        if field_count < 0:
            raise ValueError(
                f"field count must be non-negative, got {field_count!r}"
            )
        if field_count > size:
            raise ValueError(
                f"object of {size} words cannot hold {field_count} reference "
                f"slots"
            )
        self.obj_id = obj_id
        self.size = size
        self.fields: list[SlotValue] = [NULL_REF] * field_count
        self.birth = birth
        self.space: "Space | None" = None
        self.kind = kind
        #: Non-reference payload (the bits of a flonum, the characters
        #: of a string); opaque to the collector, accounted via size.
        self.payload: object = None

    def references(self) -> Iterator[int]:
        """Iterate over the object ids this object points at."""
        for ref in self.fields:
            if type(ref) is int:
                yield ref

    def points_to(self, obj_id: int) -> bool:
        """Whether any slot holds a reference to ``obj_id``."""
        return any(
            ref == obj_id for ref in self.fields if type(ref) is int
        )

    def __repr__(self) -> str:
        space = self.space.name if self.space is not None else "<detached>"
        return (
            f"HeapObject(id={self.obj_id}, kind={self.kind!r}, "
            f"size={self.size}, fields={len(self.fields)}, "
            f"birth={self.birth}, space={space})"
        )
