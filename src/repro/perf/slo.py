"""The incremental collector's pause SLO and its persistent record.

Slicing the mark phase is only worth its barrier and bookkeeping cost
if it actually bounds pauses, so this module turns "incremental pauses
are short" into a measured, CI-enforced service-level objective:

    **p99 incremental pause ≤ 1/50 of the mark-sweep full-collection
    pause**, in words of collector work, on the same workload and the
    same heap geometry.

Two workloads are measured, chosen to stress the two pause regimes:

* **decay** — the experiments' canonical radioactive-decay workload
  (half-life 2000 words).  Its equilibrium live graph is large and
  churning, so mark-sweep's full collections mark thousands of words
  while the incremental collector spreads the same marking over
  budget-bounded slices.
* **gcbench** — the classic tree-building benchmark on the stacked
  VM, whose deep temporary trees produce the suite's largest live
  spikes (and therefore the worst-case full-collection pauses).

For fairness the incremental side is judged on its *combined* pause
histogram — mark slices **and** cycle-close drains — so a collector
that defers all marking to the closing collection cannot pass.  The
mark-sweep side is judged on its full-collection pauses.  Both are
p99s from the :mod:`repro.metrics` plane's ``pause_words`` histograms
(bucket-resolution, clamped to the observed max).

Schema 2 adds a second objective for the concurrent collector:

    **p99 mutator-visible concurrent pause ≤ incremental combined
    p99**, same workload, same geometry.

"Mutator-visible" is the snapshot handoff plus the SATB
reconciliation — the only points where the mutator actually stops —
merged from the ``pause_words.handoff`` and ``pause_words.reconcile``
histograms.  Marking itself happens off-thread against the snapshot
and is deliberately excluded: it is exactly the work the design moves
out of the mutator's critical path.  Because both pauses are priced at
their *residual* parent-side scan work (zero when no SATB entry or new
root escaped the snapshot), this gate measures whether concurrency
actually removed the mark phase from the pause profile.

Results persist to ``SLO_pause.json`` at the repo root; the
``pause-slo`` CI job re-measures in quick mode and fails on any
violation.  Pauses are denominated in words of collector work, not
wall-clock seconds, so the gate is deterministic and immune to CI
scheduler noise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.gc.registry import GcGeometry, collector_factory
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.metrics.instrument import instrument_collector
from repro.metrics.registry import Histogram, MetricRegistry
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule

__all__ = [
    "SLO_FACTOR",
    "SLO_FILENAME",
    "SLO_GEOMETRY",
    "load_slo_report",
    "run_pause_slo",
    "write_slo_report",
]

SLO_FILENAME = "SLO_pause.json"
#: v2 added the concurrent collector's mutator-visible pause rows and
#: folded its verdict into each workload's ``pass``.
SCHEMA_VERSION = 2

#: The objective: incremental p99 pause * factor <= full-GC p99 pause.
SLO_FACTOR = 50

#: Decay half-life of the SLO workload (the canonical regime).
SLO_HALF_LIFE = 2_000.0
#: Decay allocation volume: enough for ~20 mark-sweep collections at
#: this geometry, so the p99 is taken over a real pause population.
SLO_ALLOC_WORDS = 60_000
QUICK_ALLOC_WORDS = 20_000
#: gcbench scale (see :mod:`repro.programs.registry`): scale 1 builds
#: trees to depth 10 — big enough for several full collections.
SLO_GCBENCH_SCALE = 1

#: SLO measurement geometry.  The semispace is sized so both workloads
#: trigger many collections (heap = 2 * semispace = 4096 words against
#: a ~2900-word decay equilibrium), and the slice budget is 32 words —
#: small enough that a budget-bounded slice is two orders of magnitude
#: below a full mark of the equilibrium graph.
SLO_GEOMETRY = GcGeometry(
    nursery_words=512,
    semispace_words=2_048,
    step_words=256,
    step_count=8,
    slice_budget=32,
)


def _decay_registry(kind: str, *, alloc_words: int, seed: int) -> MetricRegistry:
    """One instrumented decay-workload run of ``kind``."""
    heap = make_heap()
    roots = RootSet()
    collector = collector_factory(kind, SLO_GEOMETRY)(heap, roots)
    instrument = instrument_collector(collector)
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(SLO_HALF_LIFE, seed=seed)
    )
    mutator.run(alloc_words)
    mutator.release_all()
    return instrument.registry


def _gcbench_registry(kind: str, *, scale: int) -> MetricRegistry:
    """One instrumented gcbench run of ``kind`` on the stacked VM."""
    from repro.programs.registry import get_benchmark
    from repro.runtime.machine import Machine

    machine = Machine(collector_factory(kind, SLO_GEOMETRY))
    instrument = instrument_collector(machine.collector)
    get_benchmark("gcbench").run(machine, scale)
    return instrument.registry


def _pause_columns(registry: MetricRegistry) -> dict[str, Any]:
    """The pause histograms of one run, flattened for the report."""
    combined = registry.histogram("pause_words")
    return {
        "pauses": combined.count,
        "slice_pauses": registry.histogram("pause_words.slice").count,
        "full_pauses": registry.histogram("pause_words.full").count,
        "p99_pause_words": combined.quantile(0.99),
        "max_pause_words": combined.max,
    }


def _mutator_visible(registry: MetricRegistry) -> Histogram:
    """The concurrent collector's mutator-visible pause histogram.

    Handoff plus reconcile — the only pauses the mutator observes;
    off-thread marking is excluded by construction.
    """
    visible = Histogram("pause_words.mutator_visible")
    visible.merge(registry.histogram("pause_words.handoff"))
    visible.merge(registry.histogram("pause_words.reconcile"))
    return visible


def _judge_concurrent(
    concurrent: MetricRegistry, incremental_p99: int
) -> dict[str, Any]:
    """The concurrent verdict: mutator-visible p99 vs incremental p99.

    A run with no handoffs never paused concurrently, so it is not
    *measured* and must not pass silently.
    """
    visible = _mutator_visible(concurrent)
    mv_p99 = visible.quantile(0.99) if visible.count else 0
    measured = visible.count > 0 and incremental_p99 > 0
    return {
        "pauses": visible.count,
        "handoff_pauses": concurrent.histogram("pause_words.handoff").count,
        "reconcile_pauses": concurrent.histogram(
            "pause_words.reconcile"
        ).count,
        "p99_mutator_visible_pause_words": mv_p99,
        "max_mutator_visible_pause_words": visible.max,
        "incremental_p99_pause_words": incremental_p99,
        "measured": measured,
        "pass": measured and mv_p99 <= incremental_p99,
    }


def _judge(
    incremental: MetricRegistry,
    reference: MetricRegistry,
    concurrent: MetricRegistry,
) -> dict[str, Any]:
    """One workload's verdict: combined incremental p99 vs full p99,
    plus the concurrent collector's mutator-visible p99 vs incremental.

    The workload only counts as *measured* when both sides produced
    pauses — a silent no-collection run must not pass the gate.
    """
    inc = _pause_columns(incremental)
    ref = _pause_columns(reference)
    inc_p99 = inc["p99_pause_words"]
    full_p99 = reference.histogram("pause_words.full").quantile(0.99)
    measured = inc["pauses"] > 0 and full_p99 > 0
    conc = _judge_concurrent(concurrent, inc_p99)
    return {
        "incremental": inc,
        "mark-sweep": ref,
        "concurrent": conc,
        "full_p99_pause_words": full_p99,
        "ratio": (full_p99 / inc_p99) if inc_p99 > 0 else None,
        "measured": measured,
        "pass": (
            measured and inc_p99 * SLO_FACTOR <= full_p99 and conc["pass"]
        ),
    }


def run_pause_slo(*, quick: bool = False, seed: int = 0) -> dict[str, Any]:
    """Measure both workloads under both collectors; return the report."""
    alloc_words = QUICK_ALLOC_WORDS if quick else SLO_ALLOC_WORDS
    workloads = {
        "decay": _judge(
            _decay_registry("incremental", alloc_words=alloc_words, seed=seed),
            _decay_registry("mark-sweep", alloc_words=alloc_words, seed=seed),
            _decay_registry("concurrent", alloc_words=alloc_words, seed=seed),
        ),
        "gcbench": _judge(
            _gcbench_registry("incremental", scale=SLO_GCBENCH_SCALE),
            _gcbench_registry("mark-sweep", scale=SLO_GCBENCH_SCALE),
            _gcbench_registry("concurrent", scale=SLO_GCBENCH_SCALE),
        ),
    }
    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "slo_factor": SLO_FACTOR,
        "slice_budget": SLO_GEOMETRY.slice_budget,
        "semispace_words": SLO_GEOMETRY.semispace_words,
        "workloads": workloads,
        "pass": all(w["pass"] for w in workloads.values()),
    }


def load_slo_report(path: Path | str) -> dict[str, Any] | None:
    path = Path(path)
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_slo_report(path: Path | str, report: Mapping[str, Any]) -> None:
    from repro.resilience.atomic import atomic_write_json

    atomic_write_json(Path(path), report)
