"""The ``repro-gc bench`` performance suite and its persistent record.

Two microbenchmarks per collector per heap backend, both driven by
the radioactive decay workload (half-life 2000 words, the
experiments' canonical regime) on the stock
:class:`~repro.experiments.harness.GcGeometry`:

* **allocation throughput** — sustained words/second of lifetime-
  driven allocation, collections included.  The death/slot
  choreography of the workload is precomputed untimed
  (:mod:`repro.perf.plan`), so the timed region is collector work —
  reservation windows, collections, copying — plus minimal root
  stores, not Python-level workload bookkeeping;
* **full-collection latency** — wall-clock seconds per call to
  :meth:`Collector.collect` against the equilibrium live graph.

Results are persisted to ``BENCH_perf.json`` at the repo root — the
perf trajectory the CI smoke job regresses against.  The file also
carries the serial seed baseline (the pre-optimisation wall-clock of
``repro-gc all`` on the reference container) and a log of recent
``repro-gc all`` runs, so speedups are recorded next to the numbers
they are measured against.

Schema (``"schema": 5`` — v5 added the concurrent collector and its
``marker_overlap`` column, the fraction of mark work whose worker
finished while the mutator was still running; v4 added the
incremental collector; v3 added the heap-backend axis and made the
timed loop plan-driven; v2 added the pause-percentile columns, in
words of work, from the :mod:`repro.metrics` plane)::

    {
      "schema": 5,
      "quick": bool,            # quick mode shrinks the workloads ~8x
      "heap_backend": "flat",   # backend behind "collectors"
      "collectors": {           # primary (flat) backend — the axis
        "<kind>": {             # the CI regression gate reads
          "alloc_words": int,
          "alloc_seconds": float,
          "alloc_words_per_sec": float,
          "collections_during_alloc": int,
          "full_collect_rounds": int,
          "full_collect_seconds_mean": float,
          "full_collect_seconds_max": float,
          "pause_words_p50": int,
          "pause_words_p95": int,
          "pause_words_max": int,
          "marker_overlap": float  # concurrent only
        }, ...
      },
      "backends": {             # every non-primary backend measured
        "object": {"<kind>": {same columns}, ...}
      },
      "backend_speedup": {      # flat vs object, when both ran
        "per_collector": {"<kind>": float, ...},
        "mean": float
      },
      "serial_baseline": {      # preserved across rewrites
        "total_seconds": float, # seed-tree `repro-gc all`, serial
        "per_experiment_seconds": {"<name>": float, ...},
        "note": str
      },
      "all_runs": [             # appended by `repro-gc all`, newest last
        {"jobs": int, "seconds": float, "experiments": int,
         "cache_hits": int, "speedup_vs_serial_baseline": float}, ...
      ]
    }
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.gc.registry import COLLECTOR_KINDS, GcGeometry, collector_factory
from repro.heap.backend import make_heap, resolve_backend_name
from repro.heap.roots import RootSet
from repro.metrics.instrument import instrument_collector
from repro.mutator.decay_mutator import DecaySchedule
from repro.perf.plan import build_allocation_plan, execute_plan

__all__ = [
    "BENCH_FILENAME",
    "BENCH_BACKENDS",
    "BENCH_COLLECTORS",
    "CollectorBench",
    "bench_collector",
    "build_report",
    "compare_to_baseline",
    "load_report",
    "record_all_run",
    "run_perf_suite",
    "write_report",
]

BENCH_FILENAME = "BENCH_perf.json"
#: Bumped 4 -> 5 when the concurrent collector (and its
#: ``marker_overlap`` column) joined the matrix.
SCHEMA_VERSION = 5

#: Backends the suite measures, primary (report axis) first.
BENCH_BACKENDS: tuple[str, ...] = ("flat", "object")

BENCH_COLLECTORS: tuple[str, ...] = COLLECTOR_KINDS

#: Decay half-life of the bench workload, in allocation words.
BENCH_HALF_LIFE = 2_000.0
#: Full-size workload: enough allocation for hundreds of collections.
BENCH_ALLOC_WORDS = 400_000
BENCH_COLLECT_ROUNDS = 20
#: Quick mode (CI smoke): ~8x smaller, still past equilibrium.
QUICK_ALLOC_WORDS = 50_000
QUICK_COLLECT_ROUNDS = 5


@dataclass(frozen=True)
class CollectorBench:
    """One collector's measurements on one backend, one suite run."""

    collector: str
    backend: str
    alloc_words: int
    alloc_seconds: float
    alloc_words_per_sec: float
    collections_during_alloc: int
    full_collect_rounds: int
    full_collect_seconds_mean: float
    full_collect_seconds_max: float
    #: Pause-cost percentiles in words of work per collection, from
    #: the metrics plane's log-bucketed histogram (p50/p95 are within
    #: one bucket width; max is exact).
    pause_words_p50: int = 0
    pause_words_p95: int = 0
    pause_words_max: int = 0
    #: Concurrent collector only: fraction of mark work whose worker
    #: finished while the mutator was still running (``None`` for
    #: every other collector).
    marker_overlap: float | None = None

    def to_jsonable(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "alloc_words": self.alloc_words,
            "alloc_seconds": round(self.alloc_seconds, 6),
            "alloc_words_per_sec": round(self.alloc_words_per_sec, 1),
            "collections_during_alloc": self.collections_during_alloc,
            "full_collect_rounds": self.full_collect_rounds,
            "full_collect_seconds_mean": round(
                self.full_collect_seconds_mean, 6
            ),
            "full_collect_seconds_max": round(
                self.full_collect_seconds_max, 6
            ),
            "pause_words_p50": self.pause_words_p50,
            "pause_words_p95": self.pause_words_p95,
            "pause_words_max": self.pause_words_max,
        }
        if self.marker_overlap is not None:
            record["marker_overlap"] = round(self.marker_overlap, 4)
        return record


def bench_collector(
    kind: str,
    *,
    backend: str | None = None,
    alloc_words: int = BENCH_ALLOC_WORDS,
    collect_rounds: int = BENCH_COLLECT_ROUNDS,
    half_life: float = BENCH_HALF_LIFE,
    seed: int = 0,
    geometry: GcGeometry | None = None,
    repeats: int = 1,
) -> CollectorBench:
    """Measure one collector on one heap backend.

    Throughput is measured over the whole lifetime-driven run,
    collections included — it is the sustained allocation rate a
    client of this collector observes, not the pause-free peak.  The
    workload choreography is precomputed untimed; the differential
    plan-equivalence tests pin that the collector cannot tell the
    difference from per-object mutation.

    With ``repeats > 1`` the whole run executes that many times on
    fresh heaps and the fastest one is reported: the workload is
    deterministic, so every repeat does identical work and the
    minimum wall-clock is the least-interfered measurement of it.
    """
    backend = resolve_backend_name(backend)
    if kind == "concurrent":
        # Overlap is the point of the concurrent bench column, so the
        # marker gets a real worker process instead of the inline
        # reference mode the oracles replay.
        geometry = replace(geometry or GcGeometry(), marker_workers=1)
    plan = build_allocation_plan(
        DecaySchedule(half_life, seed=seed), alloc_words
    )
    best = None
    for _ in range(max(1, repeats)):
        heap = make_heap(backend)
        roots = RootSet()
        collector = collector_factory(kind, geometry)(heap, roots)
        # The pause-percentile columns come from the metrics plane;
        # its per-collection cost is bounded by the ≤5% overhead
        # acceptance test, an order of magnitude inside the 30%
        # regression tolerance.
        instrumentation = instrument_collector(collector)
        start = time.perf_counter()
        frame = execute_plan(collector, plan)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            if best is not None:
                _close_collector(best[1])
            best = (elapsed, collector, roots, frame, instrumentation)
        else:
            _close_collector(collector)
    alloc_seconds, collector, roots, frame, instrumentation = best
    collections_during_alloc = collector.stats.collections

    timings: list[float] = []
    for _ in range(collect_rounds):
        start = time.perf_counter()
        collector.collect()
        timings.append(time.perf_counter() - start)
    roots.pop_frame(frame)

    overlap = (
        collector.marker_overlap() if kind == "concurrent" else None
    )
    _close_collector(collector)
    pauses = instrumentation.registry.histogram("pause_words")
    return CollectorBench(
        collector=kind,
        backend=backend,
        alloc_words=plan.total_words,
        alloc_seconds=alloc_seconds,
        alloc_words_per_sec=(
            alloc_words / alloc_seconds if alloc_seconds > 0 else 0.0
        ),
        collections_during_alloc=collections_during_alloc,
        full_collect_rounds=collect_rounds,
        full_collect_seconds_mean=(
            sum(timings) / len(timings) if timings else 0.0
        ),
        full_collect_seconds_max=max(timings, default=0.0),
        pause_words_p50=pauses.quantile(0.5),
        pause_words_p95=pauses.quantile(0.95),
        pause_words_max=pauses.max,
        marker_overlap=overlap,
    )


def _close_collector(collector: Any) -> None:
    close = getattr(collector, "close", None)
    if close is not None:
        close()


def run_perf_suite(
    kinds: Sequence[str] = BENCH_COLLECTORS,
    *,
    quick: bool = False,
    seed: int = 0,
    backends: Sequence[str] = BENCH_BACKENDS,
) -> list[CollectorBench]:
    """Bench every collector kind on every requested backend; always
    serial (timing fidelity).  Backends are measured back-to-back per
    collector, so slow-host episodes land on both sides of a
    throughput ratio instead of skewing one whole backend sweep; the
    full suite additionally takes the best of three repeats per cell
    (see :func:`bench_collector`)."""
    alloc_words = QUICK_ALLOC_WORDS if quick else BENCH_ALLOC_WORDS
    rounds = QUICK_COLLECT_ROUNDS if quick else BENCH_COLLECT_ROUNDS
    repeats = 1 if quick else 3
    return [
        bench_collector(
            kind,
            backend=backend,
            alloc_words=alloc_words,
            collect_rounds=rounds,
            seed=seed,
            repeats=repeats,
        )
        for kind in kinds
        for backend in backends
    ]


# ----------------------------------------------------------------------
# The persistent BENCH_perf.json record
# ----------------------------------------------------------------------


def load_report(path: Path | str) -> dict[str, Any] | None:
    try:
        with Path(path).open(encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        return None
    return report if isinstance(report, dict) else None


def build_report(
    results: Sequence[CollectorBench],
    *,
    quick: bool,
    previous: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """A fresh report, carrying forward the baseline and run log.

    The primary backend (``flat`` when present, else the first
    measured) fills the top-level ``"collectors"`` mapping the CI
    regression gate reads; every other backend lands under
    ``"backends"``, and when both ``flat`` and ``object`` ran, the
    per-collector throughput ratio is summarised in
    ``"backend_speedup"``.
    """
    by_backend: dict[str, list[CollectorBench]] = {}
    for bench in results:
        by_backend.setdefault(bench.backend, []).append(bench)
    primary = "flat" if "flat" in by_backend else results[0].backend
    report: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "heap_backend": primary,
        "collectors": {
            bench.collector: bench.to_jsonable()
            for bench in by_backend[primary]
        },
    }
    secondary = {
        backend: {
            bench.collector: bench.to_jsonable() for bench in benches
        }
        for backend, benches in by_backend.items()
        if backend != primary
    }
    if secondary:
        report["backends"] = secondary
    if primary == "flat" and "object" in by_backend:
        object_rates = {
            bench.collector: bench.alloc_words_per_sec
            for bench in by_backend["object"]
        }
        speedups = {
            bench.collector: round(
                bench.alloc_words_per_sec / object_rates[bench.collector], 2
            )
            for bench in by_backend["flat"]
            if object_rates.get(bench.collector)
        }
        if speedups:
            report["backend_speedup"] = {
                "per_collector": speedups,
                "mean": round(sum(speedups.values()) / len(speedups), 2),
            }
    if previous:
        for key in ("serial_baseline", "all_runs"):
            if key in previous:
                report[key] = previous[key]
    return report


def write_report(path: Path | str, report: Mapping[str, Any]) -> None:
    from repro.resilience.atomic import atomic_write_json

    atomic_write_json(Path(path), report)


def record_all_run(
    path: Path | str,
    *,
    jobs: int,
    seconds: float,
    experiments: int,
    cache_hits: int,
    keep: int = 20,
) -> dict[str, Any]:
    """Append one ``repro-gc all`` wall-clock entry to the run log.

    The speedup is computed against ``serial_baseline.total_seconds``
    when the report carries one.  Creates the file if absent.
    """
    report = load_report(path) or {"schema": SCHEMA_VERSION}
    entry: dict[str, Any] = {
        "jobs": jobs,
        "seconds": round(seconds, 2),
        "experiments": experiments,
        "cache_hits": cache_hits,
    }
    baseline = report.get("serial_baseline", {})
    total = baseline.get("total_seconds")
    if isinstance(total, (int, float)) and seconds > 0:
        entry["speedup_vs_serial_baseline"] = round(total / seconds, 2)
    runs = report.setdefault("all_runs", [])
    runs.append(entry)
    del runs[:-keep]
    write_report(path, report)
    return entry


def compare_to_baseline(
    report: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    tolerance: float = 0.30,
) -> list[str]:
    """Throughput regressions beyond ``tolerance``, as messages.

    Only slowdowns fail: a collector regresses when its current
    ``alloc_words_per_sec`` drops below ``(1 - tolerance)`` of the
    baseline's.  Collectors absent from either side are skipped, so a
    fresh collector can land before its first baseline capture.

    ``marker_overlap`` is regression-gated too: once the committed
    baseline shows the concurrent marker doing at least half its work
    off-thread, a run where the overlap collapses below half the
    baseline fraction fails — concurrency that silently degrades to
    inline marking is a perf bug even when throughput holds.
    """
    regressions: list[str] = []
    current = report.get("collectors", {})
    reference = baseline.get("collectors", {})
    for kind, old in sorted(reference.items()):
        new = current.get(kind)
        if not isinstance(new, Mapping) or not isinstance(old, Mapping):
            continue
        old_rate = old.get("alloc_words_per_sec")
        new_rate = new.get("alloc_words_per_sec")
        if not old_rate or new_rate is None:
            continue
        floor = (1.0 - tolerance) * float(old_rate)
        if float(new_rate) < floor:
            regressions.append(
                f"{kind}: {float(new_rate):,.0f} words/sec is below "
                f"{floor:,.0f} ({100 * tolerance:.0f}% under the "
                f"baseline {float(old_rate):,.0f})"
            )
        old_overlap = old.get("marker_overlap")
        new_overlap = new.get("marker_overlap")
        if (
            isinstance(old_overlap, (int, float))
            and isinstance(new_overlap, (int, float))
            and float(old_overlap) >= 0.5
            and float(new_overlap) < 0.5 * float(old_overlap)
        ):
            regressions.append(
                f"{kind}: marker_overlap {float(new_overlap):.2f} is "
                f"below half the baseline {float(old_overlap):.2f} — "
                f"off-thread marking has degraded toward inline"
            )
    return regressions
