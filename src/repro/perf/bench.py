"""The ``repro-gc bench`` performance suite and its persistent record.

Two microbenchmarks per collector, both driven by the radioactive
decay workload (half-life 2000 words, the experiments' canonical
regime) on the stock :class:`~repro.experiments.harness.GcGeometry`:

* **allocation throughput** — sustained words/second through
  :meth:`Collector.allocate`, collections included, measured over a
  long mutator run at equilibrium;
* **full-collection latency** — wall-clock seconds per call to
  :meth:`Collector.collect` against the equilibrium live graph.

Results are persisted to ``BENCH_perf.json`` at the repo root — the
perf trajectory the CI smoke job regresses against.  The file also
carries the serial seed baseline (the pre-optimisation wall-clock of
``repro-gc all`` on the reference container) and a log of recent
``repro-gc all`` runs, so speedups are recorded next to the numbers
they are measured against.

Schema (``"schema": 2`` — v2 added the pause-percentile columns,
in words of work, from the :mod:`repro.metrics` plane)::

    {
      "schema": 2,
      "quick": bool,            # quick mode shrinks the workloads ~8x
      "collectors": {
        "<kind>": {
          "alloc_words": int,
          "alloc_seconds": float,
          "alloc_words_per_sec": float,
          "collections_during_alloc": int,
          "full_collect_rounds": int,
          "full_collect_seconds_mean": float,
          "full_collect_seconds_max": float,
          "pause_words_p50": int,
          "pause_words_p95": int,
          "pause_words_max": int
        }, ...
      },
      "serial_baseline": {      # preserved across rewrites
        "total_seconds": float, # seed-tree `repro-gc all`, serial
        "per_experiment_seconds": {"<name>": float, ...},
        "note": str
      },
      "all_runs": [             # appended by `repro-gc all`, newest last
        {"jobs": int, "seconds": float, "experiments": int,
         "cache_hits": int, "speedup_vs_serial_baseline": float}, ...
      ]
    }
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.experiments.harness import GcGeometry, collector_factory
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.metrics.instrument import instrument_collector
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule

__all__ = [
    "BENCH_FILENAME",
    "BENCH_COLLECTORS",
    "CollectorBench",
    "bench_collector",
    "build_report",
    "compare_to_baseline",
    "load_report",
    "record_all_run",
    "run_perf_suite",
    "write_report",
]

BENCH_FILENAME = "BENCH_perf.json"
SCHEMA_VERSION = 2

BENCH_COLLECTORS: tuple[str, ...] = (
    "mark-sweep",
    "stop-and-copy",
    "generational",
    "non-predictive",
    "hybrid",
)

#: Decay half-life of the bench workload, in allocation words.
BENCH_HALF_LIFE = 2_000.0
#: Full-size workload: enough allocation for hundreds of collections.
BENCH_ALLOC_WORDS = 400_000
BENCH_COLLECT_ROUNDS = 20
#: Quick mode (CI smoke): ~8x smaller, still past equilibrium.
QUICK_ALLOC_WORDS = 50_000
QUICK_COLLECT_ROUNDS = 5


@dataclass(frozen=True)
class CollectorBench:
    """One collector's measurements for one suite run."""

    collector: str
    alloc_words: int
    alloc_seconds: float
    alloc_words_per_sec: float
    collections_during_alloc: int
    full_collect_rounds: int
    full_collect_seconds_mean: float
    full_collect_seconds_max: float
    #: Pause-cost percentiles in words of work per collection, from
    #: the metrics plane's log-bucketed histogram (p50/p95 are within
    #: one bucket width; max is exact).
    pause_words_p50: int = 0
    pause_words_p95: int = 0
    pause_words_max: int = 0

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "alloc_words": self.alloc_words,
            "alloc_seconds": round(self.alloc_seconds, 6),
            "alloc_words_per_sec": round(self.alloc_words_per_sec, 1),
            "collections_during_alloc": self.collections_during_alloc,
            "full_collect_rounds": self.full_collect_rounds,
            "full_collect_seconds_mean": round(
                self.full_collect_seconds_mean, 6
            ),
            "full_collect_seconds_max": round(
                self.full_collect_seconds_max, 6
            ),
            "pause_words_p50": self.pause_words_p50,
            "pause_words_p95": self.pause_words_p95,
            "pause_words_max": self.pause_words_max,
        }


def bench_collector(
    kind: str,
    *,
    alloc_words: int = BENCH_ALLOC_WORDS,
    collect_rounds: int = BENCH_COLLECT_ROUNDS,
    half_life: float = BENCH_HALF_LIFE,
    seed: int = 0,
    geometry: GcGeometry | None = None,
) -> CollectorBench:
    """Measure one collector.

    Throughput is measured over the whole mutator run, collections
    included — it is the sustained allocation rate a client of this
    collector observes, not the pause-free peak.
    """
    heap = SimulatedHeap()
    roots = RootSet()
    collector = collector_factory(kind, geometry)(heap, roots)
    # The pause-percentile columns come from the metrics plane; its
    # per-collection cost is bounded by the ≤5% overhead acceptance
    # test, an order of magnitude inside the 30% regression tolerance.
    instrumentation = instrument_collector(collector)
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(half_life, seed=seed)
    )
    start = time.perf_counter()
    mutator.run(alloc_words)
    alloc_seconds = time.perf_counter() - start
    collections_during_alloc = collector.stats.collections

    timings: list[float] = []
    for _ in range(collect_rounds):
        start = time.perf_counter()
        collector.collect()
        timings.append(time.perf_counter() - start)
    mutator.release_all()

    pauses = instrumentation.registry.histogram("pause_words")
    return CollectorBench(
        collector=kind,
        alloc_words=alloc_words,
        alloc_seconds=alloc_seconds,
        alloc_words_per_sec=(
            alloc_words / alloc_seconds if alloc_seconds > 0 else 0.0
        ),
        collections_during_alloc=collections_during_alloc,
        full_collect_rounds=collect_rounds,
        full_collect_seconds_mean=(
            sum(timings) / len(timings) if timings else 0.0
        ),
        full_collect_seconds_max=max(timings, default=0.0),
        pause_words_p50=pauses.quantile(0.5),
        pause_words_p95=pauses.quantile(0.95),
        pause_words_max=pauses.max,
    )


def run_perf_suite(
    kinds: Sequence[str] = BENCH_COLLECTORS,
    *,
    quick: bool = False,
    seed: int = 0,
) -> list[CollectorBench]:
    """Bench every collector kind; always serial (timing fidelity)."""
    alloc_words = QUICK_ALLOC_WORDS if quick else BENCH_ALLOC_WORDS
    rounds = QUICK_COLLECT_ROUNDS if quick else BENCH_COLLECT_ROUNDS
    return [
        bench_collector(
            kind,
            alloc_words=alloc_words,
            collect_rounds=rounds,
            seed=seed,
        )
        for kind in kinds
    ]


# ----------------------------------------------------------------------
# The persistent BENCH_perf.json record
# ----------------------------------------------------------------------


def load_report(path: Path | str) -> dict[str, Any] | None:
    try:
        with Path(path).open(encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        return None
    return report if isinstance(report, dict) else None


def build_report(
    results: Sequence[CollectorBench],
    *,
    quick: bool,
    previous: Mapping[str, Any] | None = None,
) -> dict[str, Any]:
    """A fresh report, carrying forward the baseline and run log."""
    report: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "collectors": {
            bench.collector: bench.to_jsonable() for bench in results
        },
    }
    if previous:
        for key in ("serial_baseline", "all_runs"):
            if key in previous:
                report[key] = previous[key]
    return report


def write_report(path: Path | str, report: Mapping[str, Any]) -> None:
    from repro.resilience.atomic import atomic_write_json

    atomic_write_json(Path(path), report)


def record_all_run(
    path: Path | str,
    *,
    jobs: int,
    seconds: float,
    experiments: int,
    cache_hits: int,
    keep: int = 20,
) -> dict[str, Any]:
    """Append one ``repro-gc all`` wall-clock entry to the run log.

    The speedup is computed against ``serial_baseline.total_seconds``
    when the report carries one.  Creates the file if absent.
    """
    report = load_report(path) or {"schema": SCHEMA_VERSION}
    entry: dict[str, Any] = {
        "jobs": jobs,
        "seconds": round(seconds, 2),
        "experiments": experiments,
        "cache_hits": cache_hits,
    }
    baseline = report.get("serial_baseline", {})
    total = baseline.get("total_seconds")
    if isinstance(total, (int, float)) and seconds > 0:
        entry["speedup_vs_serial_baseline"] = round(total / seconds, 2)
    runs = report.setdefault("all_runs", [])
    runs.append(entry)
    del runs[:-keep]
    write_report(path, report)
    return entry


def compare_to_baseline(
    report: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    tolerance: float = 0.30,
) -> list[str]:
    """Throughput regressions beyond ``tolerance``, as messages.

    Only slowdowns fail: a collector regresses when its current
    ``alloc_words_per_sec`` drops below ``(1 - tolerance)`` of the
    baseline's.  Collectors absent from either side are skipped, so a
    fresh collector can land before its first baseline capture.
    """
    regressions: list[str] = []
    current = report.get("collectors", {})
    reference = baseline.get("collectors", {})
    for kind, old in sorted(reference.items()):
        new = current.get(kind)
        if not isinstance(new, Mapping) or not isinstance(old, Mapping):
            continue
        old_rate = old.get("alloc_words_per_sec")
        new_rate = new.get("alloc_words_per_sec")
        if not old_rate or new_rate is None:
            continue
        floor = (1.0 - tolerance) * float(old_rate)
        if float(new_rate) < floor:
            regressions.append(
                f"{kind}: {float(new_rate):,.0f} words/sec is below "
                f"{floor:,.0f} ({100 * tolerance:.0f}% under the "
                f"baseline {float(old_rate):,.0f})"
            )
    return regressions
