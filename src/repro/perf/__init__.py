"""Performance layer: parallel experiment engine, benchmarks, caching.

The reproduction's artifacts are pure functions of the source tree:
every experiment takes only registry defaults and derives all
randomness from fixed seeds.  That makes the whole artifact pipeline
embarrassingly parallel and aggressively cacheable, which this package
exploits:

* :mod:`repro.perf.parallel` — deterministic fan-out of independent
  experiment/sweep tasks over a process pool, results merged back in
  registry order;
* :mod:`repro.perf.cache` — an on-disk artifact cache keyed by
  (experiment name, parameters, source digest), so ``repro-gc all``
  skips artifacts the current source tree has already produced;
* :mod:`repro.perf.bench` — the ``repro-gc bench`` performance suite:
  allocation throughput and full-collection latency per collector,
  persisted to ``BENCH_perf.json`` as the repo's perf trajectory.
"""

from repro.perf.bench import (
    BENCH_FILENAME,
    CollectorBench,
    build_report,
    compare_to_baseline,
    run_perf_suite,
)
from repro.perf.cache import ArtifactCache, source_digest
from repro.perf.parallel import (
    ExperimentRecord,
    default_jobs,
    derive_seed,
    parallel_map,
    run_experiment_records,
)

__all__ = [
    "ArtifactCache",
    "BENCH_FILENAME",
    "CollectorBench",
    "ExperimentRecord",
    "build_report",
    "compare_to_baseline",
    "default_jobs",
    "derive_seed",
    "parallel_map",
    "run_experiment_records",
    "run_perf_suite",
    "source_digest",
]
