"""On-disk artifact cache keyed by the source tree's digest.

Every experiment is a pure function of (its name, its parameters, the
``repro`` package's source), so an artifact produced once is valid
until the source changes.  The cache stores one JSON file per entry
under ``.repro_cache/`` and bakes a key of

    sha256(name, canonical-JSON(params), source digest)

into both the filename and the entry body.  Any edit to any ``.py``
file under ``src/repro/`` changes the digest, which changes every key,
which makes every old entry unreachable — invalidation is automatic
and conservative (there is no per-module dependency tracking; touching
a docstring invalidates everything).

Stale files from earlier digests are left on disk until
:meth:`ArtifactCache.clear` removes them; they are small and harmless.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Mapping

__all__ = ["ArtifactCache", "CACHE_DIR_NAME", "source_digest"]

#: Directory created next to wherever ``repro-gc all`` runs.
CACHE_DIR_NAME = ".repro_cache"

#: The default parameter marker: experiments run from the registry take
#: only their defaults, so their parameter dict is empty.
_DEFAULT_PARAMS: Mapping[str, Any] = {}


def source_digest(package_root: Path | None = None) -> str:
    """sha256 over every ``.py`` file of the ``repro`` package.

    Files are folded in sorted relative-path order with NUL separators,
    so renames, additions, deletions and edits all change the digest.
    """
    root = (
        package_root
        if package_root is not None
        else Path(__file__).resolve().parents[1]
    )
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ArtifactCache:
    """A content-addressed store of experiment artifacts.

    Args:
        directory: where entry files live; created lazily on first
            :meth:`put`.
        digest: the source digest to key under; computed from the
            installed package when omitted (tests inject fixed digests
            to exercise invalidation without editing files).
    """

    def __init__(
        self, directory: Path | str, *, digest: str | None = None
    ) -> None:
        self.directory = Path(directory)
        self.digest = digest if digest is not None else source_digest()

    @classmethod
    def default(cls) -> "ArtifactCache":
        """The CLI's cache: ``.repro_cache/`` under the current directory."""
        return cls(Path.cwd() / CACHE_DIR_NAME)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------

    def key(
        self, name: str, params: Mapping[str, Any] | None = None
    ) -> str:
        blob = json.dumps(
            {
                "name": name,
                "params": dict(params if params is not None else _DEFAULT_PARAMS),
                "source": self.digest,
            },
            sort_keys=True,
            default=str,
        ).encode()
        return hashlib.sha256(blob).hexdigest()

    def entry_path(
        self, name: str, params: Mapping[str, Any] | None = None
    ) -> Path:
        return self.directory / f"{name}-{self.key(name, params)[:16]}.json"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def get(
        self, name: str, params: Mapping[str, Any] | None = None
    ) -> Any | None:
        """The cached value, or None on miss/corruption/stale digest."""
        path = self.entry_path(name, params)
        try:
            with path.open(encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("key") != self.key(name, params):
            return None  # truncated-key filename collision
        return entry.get("value")

    def put(
        self,
        name: str,
        value: Any,
        params: Mapping[str, Any] | None = None,
    ) -> Path:
        """Store a JSON-able value; atomic write-fsync-rename."""
        from repro.resilience.atomic import atomic_write_text

        path = self.entry_path(name, params)
        entry = {
            "name": name,
            "params": dict(params if params is not None else _DEFAULT_PARAMS),
            "key": self.key(name, params),
            "source": self.digest,
            "created": time.time(),
            "value": value,
        }
        return atomic_write_text(path, json.dumps(entry, sort_keys=True))

    def clear(self) -> int:
        """Delete every entry file; returns how many were removed."""
        removed = 0
        if not self.directory.is_dir():
            return removed
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
