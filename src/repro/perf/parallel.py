"""Deterministic parallel fan-out for experiments and sweeps.

Every artifact in the registry is a pure function of the source tree:
fixed seeds, no shared state, no wall-clock dependence.  Independent
tasks can therefore run in worker processes and be merged back in
registry order without changing a single output byte.  Three rules
keep that guarantee:

* **tasks are named, not numbered** — results are reassembled by task
  identity (experiment name, seed), never by completion order;
* **seeds are derived, not drawn** — a sweep's per-task seeds come
  from :func:`derive_seed`, a pure hash of (base seed, index), so the
  stream a task sees is independent of how many workers ran it;
* **``jobs=1`` bypasses the pool entirely** — the serial path is the
  reference semantics, and everything else must equal it.

Workers are spawned by :class:`concurrent.futures.ProcessPoolExecutor`
with the default start method; task callables must be module-level
(picklable) functions.
"""

from __future__ import annotations

import hashlib
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.cache import ArtifactCache

__all__ = [
    "ExperimentRecord",
    "default_jobs",
    "derive_seed",
    "parallel_map",
    "run_experiment_records",
]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def default_jobs() -> int:
    """Worker count when the user does not pass ``--jobs``.

    Honours the ``REPRO_JOBS`` environment variable; otherwise 1, so
    library callers and tests stay serial (and deterministic profiling
    stays trivial) unless parallelism is requested explicitly.
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return 1


def derive_seed(base_seed: int, index: int) -> int:
    """A 63-bit per-task seed, a pure function of (base seed, index).

    Tasks must not share one RNG stream (the partitioning would depend
    on worker scheduling), and ``base_seed + index`` collides across
    sweeps.  Hashing keeps every task's stream fixed and distinct no
    matter where or in what order it runs.
    """
    blob = f"{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


def parallel_map(
    func: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    *,
    jobs: int = 1,
) -> list[_ResultT]:
    """Map ``func`` over ``items``; results always in input order.

    With ``jobs <= 1`` (or fewer than two items) this is a plain loop
    in the current process — no pool, no pickling, byte-identical to
    the pre-parallel code path.  Otherwise ``func`` must be a
    module-level function and items/results must pickle.
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [func(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(func, work))


# ----------------------------------------------------------------------
# The experiment fan-out used by ``repro-gc all --jobs N``
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentRecord:
    """One experiment's artifact plus how it was produced.

    ``payload`` is the JSON-able form of the experiment result (what
    ``repro-gc all --output`` writes), not the live result object:
    worker processes and the artifact cache both require a stable
    serialized form.
    """

    name: str
    text: str
    payload: Any
    seconds: float
    cached: bool


def _experiment_task(name: str) -> tuple[str, str, Any, float]:
    # Imported lazily: this runs inside worker processes, and importing
    # the runner at module scope would cycle (runner -> perf -> runner).
    import sys

    from repro.experiments.export import to_jsonable
    from repro.experiments.runner import run_experiment

    # The boyer-family experiments recurse deeply through the Scheme
    # runtime; fresh worker processes start at the CPython default.
    if sys.getrecursionlimit() < 200_000:
        sys.setrecursionlimit(200_000)
    start = time.perf_counter()
    result, text = run_experiment(name)
    seconds = time.perf_counter() - start
    return name, text, to_jsonable(result), seconds


def run_experiment_records(
    names: Sequence[str],
    *,
    jobs: int = 1,
    cache: "ArtifactCache | None" = None,
) -> list[ExperimentRecord]:
    """Regenerate the named artifacts, fanning cache misses out to
    ``jobs`` workers; records come back in the order of ``names``.

    When a cache is supplied, hits are served without running anything
    and misses are stored after running, keyed by (name, default
    parameters, source digest) — see :mod:`repro.perf.cache`.
    """
    records: dict[str, ExperimentRecord] = {}
    missing: list[str] = []
    for name in names:
        entry = cache.get(name) if cache is not None else None
        if entry is not None:
            records[name] = ExperimentRecord(
                name=name,
                text=entry["text"],
                payload=entry["payload"],
                seconds=entry.get("seconds", 0.0),
                cached=True,
            )
        else:
            missing.append(name)
    for name, text, payload, seconds in parallel_map(
        _experiment_task, missing, jobs=jobs
    ):
        records[name] = ExperimentRecord(
            name=name,
            text=text,
            payload=payload,
            seconds=seconds,
            cached=False,
        )
        if cache is not None:
            cache.put(
                name,
                {"text": text, "payload": payload, "seconds": seconds},
            )
    return [records[name] for name in names]
