"""Deterministic parallel fan-out for experiments and sweeps.

Every artifact in the registry is a pure function of the source tree:
fixed seeds, no shared state, no wall-clock dependence.  Independent
tasks can therefore run in worker processes and be merged back in
registry order without changing a single output byte.  Three rules
keep that guarantee:

* **tasks are named, not numbered** — results are reassembled by task
  identity (experiment name, seed), never by completion order;
* **seeds are derived, not drawn** — a sweep's per-task seeds come
  from :func:`derive_seed`, a pure hash of (base seed, index), so the
  stream a task sees is independent of how many workers ran it;
* **``jobs=1`` bypasses the pool entirely** — the serial path is the
  reference semantics, and everything else must equal it.

Workers are spawned by :class:`concurrent.futures.ProcessPoolExecutor`
with the default start method; task callables must be module-level
(picklable) functions.
"""

from __future__ import annotations

import hashlib
import os
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.cache import ArtifactCache
    from repro.resilience.journal import SweepJournal

__all__ = [
    "ExperimentRecord",
    "TaskFailure",
    "default_jobs",
    "derive_seed",
    "parallel_map",
    "resilient_map",
    "run_experiment_records",
    "run_metric_records",
    "task_retries",
    "task_timeout",
]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def default_jobs() -> int:
    """Worker count when the user does not pass ``--jobs``.

    Honours the ``REPRO_JOBS`` environment variable; otherwise 1, so
    library callers and tests stay serial (and deterministic profiling
    stays trivial) unless parallelism is requested explicitly.
    """
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(
                f"REPRO_JOBS must be an integer, got {env!r}"
            ) from None
    return 1


def derive_seed(base_seed: int, index: int, attempt: int = 0) -> int:
    """A 63-bit per-task seed, a pure function of (base seed, index).

    Tasks must not share one RNG stream (the partitioning would depend
    on worker scheduling), and ``base_seed + index`` collides across
    sweeps.  Hashing keeps every task's stream fixed and distinct no
    matter where or in what order it runs.

    ``attempt`` salts the seed on retry: attempt 0 hashes exactly the
    historical ``"base:index"`` blob (so first-attempt results stay
    byte-identical to every golden fingerprint), while a retried task
    gets a fresh-but-deterministic stream — if attempt 1 hits the same
    environmental failure, it will at least not be *because* it
    replayed the identical schedule.
    """
    if attempt:
        blob = f"{base_seed}:{index}:retry{attempt}".encode()
    else:
        blob = f"{base_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") >> 1


def task_timeout() -> float | None:
    """Per-task timeout in seconds, from ``REPRO_TASK_TIMEOUT``.

    Unset, empty, or ``0`` means no timeout (the default: experiments
    are deterministic, so a wedged task normally means a wedged
    machine, not a wedged task).
    """
    env = os.environ.get("REPRO_TASK_TIMEOUT", "").strip()
    if not env:
        return None
    try:
        value = float(env)
    except ValueError:
        raise ValueError(
            f"REPRO_TASK_TIMEOUT must be a number of seconds, got {env!r}"
        ) from None
    return value if value > 0 else None


def task_retries() -> int:
    """How many times a failed task is re-attempted (default 1).

    Reads ``REPRO_TASK_RETRIES``.  This bounds *additional* attempts:
    with the default of 1, a task runs at most twice before it is
    quarantined.
    """
    env = os.environ.get("REPRO_TASK_RETRIES", "").strip()
    if not env:
        return 1
    try:
        return max(0, int(env))
    except ValueError:
        raise ValueError(
            f"REPRO_TASK_RETRIES must be an integer, got {env!r}"
        ) from None


def parallel_map(
    func: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    *,
    jobs: int = 1,
) -> list[_ResultT]:
    """Map ``func`` over ``items``; results always in input order.

    With ``jobs <= 1`` (or fewer than two items) this is a plain loop
    in the current process — no pool, no pickling, byte-identical to
    the pre-parallel code path.  Otherwise ``func`` must be a
    module-level function and items/results must pickle.
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1:
        return [func(item) for item in work]
    with ProcessPoolExecutor(max_workers=min(jobs, len(work))) as pool:
        return list(pool.map(func, work))


# ----------------------------------------------------------------------
# The hardened fan-out: timeouts, bounded retry, quarantine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaskFailure:
    """A task that exhausted its retry budget (quarantined).

    Attributes:
        index: the task's position in the input sequence.
        item: the input item (must be repr-able for reporting).
        kind: ``"crash"`` (the task raised), ``"timeout"`` (exceeded
            the per-task budget), or ``"worker-crash"`` (its worker
            process died — OOM kill, signal, interpreter abort).
        attempts: how many attempts were made in total.
        error: the last failure's description.
    """

    index: int
    item: Any
    kind: str
    attempts: int
    error: str

    def summary(self) -> str:
        return (
            f"{self.item!r}: {self.kind} after {self.attempts} "
            f"attempt(s): {self.error}"
        )


def resilient_map(
    func: Callable[[Any, int], Any],
    items: Iterable[Any],
    *,
    jobs: int = 1,
    timeout: float | None = None,
    retries: int | None = None,
    on_result: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Like :func:`parallel_map`, but failures cannot sink the sweep.

    ``func`` is called as ``func(item, attempt)`` — attempt 0 first,
    incrementing on each retry so tasks can salt derived seeds
    (:func:`derive_seed`).  Each slot of the returned list (input
    order) holds either the task's result or a :class:`TaskFailure`
    describing why it was quarantined after ``retries`` extra
    attempts.

    * A raising task is retried, then quarantined (``"crash"``).
    * With ``jobs > 1``, a task running longer than ``timeout``
      seconds has its (unkillable-politely) worker pool torn down and
      rebuilt; innocent in-flight tasks are resubmitted at their same
      attempt number, the offender at ``attempt + 1``
      (``"timeout"``).  Timeouts are not enforced on the serial path —
      there is no worker to kill.
    * A dead worker process (:class:`BrokenProcessPool`) retires the
      pool the same way; every in-flight task at the time of death is
      charged one attempt, since the engine cannot know which of them
      killed it (``"worker-crash"``).

    ``timeout``/``retries`` default to the ``REPRO_TASK_TIMEOUT`` /
    ``REPRO_TASK_RETRIES`` environment knobs.  ``on_result`` is
    invoked in the parent process as each slot settles — the sweep
    journal hangs off this to persist completions immediately.
    """
    work = list(items)
    if timeout is None:
        timeout = task_timeout()
    if retries is None:
        retries = task_retries()
    results: list[Any] = [None] * len(work)

    def settle(index: int, outcome: Any) -> None:
        results[index] = outcome
        if on_result is not None:
            on_result(index, outcome)

    if jobs <= 1 or len(work) <= 1:
        for index, item in enumerate(work):
            settle(index, _serial_attempts(func, item, index, retries))
        return results

    pending: deque[tuple[int, Any, int]] = deque(
        (index, item, 0) for index, item in enumerate(work)
    )
    inflight: dict[Any, tuple[int, Any, int, float]] = {}

    def retry_or_quarantine(
        index: int, item: Any, attempt: int, kind: str, error: str
    ) -> None:
        if attempt < retries:
            pending.append((index, item, attempt + 1))
        else:
            settle(
                index,
                TaskFailure(
                    index=index,
                    item=item,
                    kind=kind,
                    attempts=attempt + 1,
                    error=error,
                ),
            )

    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        while pending or inflight:
            while pending and len(inflight) < jobs:
                index, item, attempt = pending.popleft()
                try:
                    future = pool.submit(func, item, attempt)
                except BrokenProcessPool:
                    pool = _replace_pool(pool, jobs)
                    future = pool.submit(func, item, attempt)
                inflight[future] = (index, item, attempt, time.monotonic())

            tick = 0.05 if timeout is not None else None
            done, _ = wait(
                set(inflight), timeout=tick, return_when=FIRST_COMPLETED
            )
            broken = False
            for future in done:
                index, item, attempt, _started = inflight.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    broken = True
                    retry_or_quarantine(
                        index,
                        item,
                        attempt,
                        "worker-crash",
                        str(exc) or type(exc).__name__,
                    )
                except Exception as exc:
                    retry_or_quarantine(
                        index,
                        item,
                        attempt,
                        "crash",
                        f"{type(exc).__name__}: {exc}",
                    )
                else:
                    settle(index, value)
            if broken:
                # The pool is unusable; everything still in flight is
                # doomed but innocent — resubmit at the same attempt.
                for index, item, attempt, _started in inflight.values():
                    pending.append((index, item, attempt))
                inflight = {}
                pool = _replace_pool(pool, jobs)
                continue
            if timeout is not None and inflight:
                now = time.monotonic()
                expired = [
                    future
                    for future, (_i, _it, _a, started) in inflight.items()
                    if now - started > timeout
                ]
                if expired:
                    # A stuck worker cannot be cancelled politely;
                    # tear the pool down and resubmit the innocent.
                    for future in expired:
                        index, item, attempt, started = inflight.pop(future)
                        retry_or_quarantine(
                            index,
                            item,
                            attempt,
                            "timeout",
                            f"exceeded {timeout}s "
                            f"(ran {now - started:.1f}s)",
                        )
                    for index, item, attempt, _started in inflight.values():
                        pending.append((index, item, attempt))
                    inflight = {}
                    pool = _replace_pool(pool, jobs)
    finally:
        _terminate_pool(pool)
    return results


def _serial_attempts(
    func: Callable[[Any, int], Any], item: Any, index: int, retries: int
) -> Any:
    error = ""
    for attempt in range(retries + 1):
        try:
            return func(item, attempt)
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
    return TaskFailure(
        index=index,
        item=item,
        kind="crash",
        attempts=retries + 1,
        error=error,
    )


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    # _processes is CPython's worker table; gone after shutdown, so
    # snapshot it first.  Killing is the point: a wedged worker never
    # honours a polite shutdown.
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        if process.is_alive():
            process.terminate()
    for process in processes:
        process.join(timeout=2.0)


def _replace_pool(
    pool: ProcessPoolExecutor, jobs: int
) -> ProcessPoolExecutor:
    _terminate_pool(pool)
    return ProcessPoolExecutor(max_workers=jobs)


# ----------------------------------------------------------------------
# The experiment fan-out used by ``repro-gc all --jobs N``
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentRecord:
    """One experiment's artifact plus how it was produced.

    ``payload`` is the JSON-able form of the experiment result (what
    ``repro-gc all --output`` writes), not the live result object:
    worker processes and the artifact cache both require a stable
    serialized form.
    """

    name: str
    text: str
    payload: Any
    seconds: float
    cached: bool


def _experiment_task(
    name: str, attempt: int = 0
) -> tuple[str, str, Any, float]:
    # ``attempt`` is the resilient engine's retry counter; experiments
    # run from the registry are pure functions of the source, so a
    # retry recomputes the identical artifact and the counter is
    # deliberately unused here (seeded *sweep* tasks salt with it).
    del attempt
    # Imported lazily: this runs inside worker processes, and importing
    # the runner at module scope would cycle (runner -> perf -> runner).
    import sys

    from repro.experiments.export import to_jsonable
    from repro.experiments.runner import run_experiment

    # The boyer-family experiments recurse deeply through the Scheme
    # runtime; fresh worker processes start at the CPython default.
    if sys.getrecursionlimit() < 200_000:
        sys.setrecursionlimit(200_000)
    start = time.perf_counter()
    result, text = run_experiment(name)
    seconds = time.perf_counter() - start
    return name, text, to_jsonable(result), seconds


def _metric_task(cell: tuple[str, int, int]) -> dict[str, Any]:
    """One metrics-sweep cell, in a worker process.

    ``cell`` is ``(collector kind, derived seed, alloc words)`` — all
    primitives, so it pickles.  The registry comes back in its JSON
    form (also picklable); the parent re-hydrates and merges in cell
    order, never completion order, so sweep metrics are byte-identical
    at any jobs level.
    """
    import sys

    from repro.metrics.sweep import run_decay_cell

    if sys.getrecursionlimit() < 200_000:
        sys.setrecursionlimit(200_000)
    kind, seed, alloc_words = cell
    registry, _stream = run_decay_cell(kind, seed, alloc_words=alloc_words)
    return registry.to_jsonable()


def run_metric_records(
    cells: Sequence[tuple[str, int, int]],
    *,
    jobs: int = 1,
) -> list[dict[str, Any]]:
    """Fan metrics-sweep cells out; JSON registries in input order."""
    return parallel_map(_metric_task, cells, jobs=jobs)


def run_experiment_records(
    names: Sequence[str],
    *,
    jobs: int = 1,
    cache: "ArtifactCache | None" = None,
    timeout: float | None = None,
    retries: int | None = None,
    journal: "SweepJournal | None" = None,
    failures: "list[TaskFailure] | None" = None,
) -> list[ExperimentRecord]:
    """Regenerate the named artifacts, fanning cache misses out to
    ``jobs`` workers; records come back in the order of ``names``.

    When a cache is supplied, hits are served without running anything
    and misses are stored after running, keyed by (name, default
    parameters, source digest) — see :mod:`repro.perf.cache`.

    The fan-out is the resilient engine (:func:`resilient_map`):
    ``timeout``/``retries`` bound each task (defaulting to the
    ``REPRO_TASK_TIMEOUT``/``REPRO_TASK_RETRIES`` knobs), quarantined
    tasks are appended to ``failures`` instead of sinking the sweep
    (their names are simply absent from the returned records), and a
    ``journal`` — when given — has every completion persisted the
    moment it happens, so a killed sweep resumes where it stopped.
    """
    records: dict[str, ExperimentRecord] = {}
    missing: list[str] = []
    for name in names:
        if journal is not None:
            entry = journal.completed.get(name)
            if entry is not None:
                records[name] = ExperimentRecord(
                    name=name,
                    text=entry["text"],
                    payload=entry["payload"],
                    seconds=entry.get("seconds", 0.0),
                    cached=True,
                )
                continue
        entry = cache.get(name) if cache is not None else None
        if entry is not None:
            records[name] = ExperimentRecord(
                name=name,
                text=entry["text"],
                payload=entry["payload"],
                seconds=entry.get("seconds", 0.0),
                cached=True,
            )
            if journal is not None:
                journal.record_success(name, entry)
        else:
            missing.append(name)

    def on_result(index: int, outcome: Any) -> None:
        # Runs in the parent as each task settles: persist *now*, so a
        # kill -9 one task later loses at most the task in flight.
        name = missing[index]
        if isinstance(outcome, TaskFailure):
            if journal is not None:
                journal.record_failure(
                    name,
                    {
                        "kind": outcome.kind,
                        "attempts": outcome.attempts,
                        "error": outcome.error,
                    },
                )
            return
        _task_name, text, payload, seconds = outcome
        entry = {"text": text, "payload": payload, "seconds": seconds}
        if cache is not None:
            cache.put(name, entry)
        if journal is not None:
            journal.record_success(name, entry)

    outcomes = resilient_map(
        _experiment_task,
        missing,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        on_result=on_result,
    )
    for name, outcome in zip(missing, outcomes):
        if isinstance(outcome, TaskFailure):
            if failures is not None:
                failures.append(outcome)
            continue
        _task_name, text, payload, seconds = outcome
        records[name] = ExperimentRecord(
            name=name,
            text=text,
            payload=payload,
            seconds=seconds,
            cached=False,
        )
    return [records[name] for name in names if name in records]
