"""Plan-driven benchmark workloads: the decay mutator, choreographed.

The allocation-throughput benchmark wants to time the *collector* —
reservation, collection, copying — not the synthetic workload driving
it.  Most of a :class:`~repro.mutator.base.LifetimeDrivenMutator`
step is bookkeeping whose outcome is fully deterministic before the
run starts: the lifetime drawn for allocation *i*, its death clock,
which root slot frees before which allocation.  None of it depends on
collector state, because the simulated clock advances only on
allocation — exactly ``object_words`` per object — so allocation *i*
always happens at clock ``start + i * object_words``.

:func:`build_allocation_plan` replays that choreography once, untimed,
into flat tuples; :func:`execute_plan` then drives a collector through
the identical workload with nothing in the timed loop but allocation
windows (:meth:`~repro.gc.collector.Collector.reserve_window`, which
the flat backend materializes at C speed) and root-slot stores.
Observable collector state afterwards — collections, pause log,
GcStats, heap fingerprint — is identical to driving
``LifetimeDrivenMutator.run`` over the same schedule, which
``tests/perf/test_plan.py`` pins for every collector on both backends.

Two facts carry the equivalence argument:

* A window never outlives its reservation: ``reserve_window`` caps the
  window at the reserved space's free room, so no collection can fall
  *inside* a window — collections happen between windows, at exactly
  the clocks where per-object allocation would have triggered them.
* Releasing a root slot is invisible to the heap until the next
  collection, so releases due mid-window may be applied at the
  per-object points inside the window loop (as they are here) or at
  any point before the next reservation — the collector cannot tell.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.gc.collector import Collector
from repro.heap.roots import Frame
from repro.mutator.base import LifetimeSchedule

__all__ = ["AllocationPlan", "build_allocation_plan", "execute_plan"]


@dataclass(frozen=True)
class AllocationPlan:
    """The precomputed choreography of one lifetime-driven run.

    Attributes:
        object_words: size of every allocated object.
        total_objects: number of allocations in the run.
        releases: per allocation, the root slots to clear immediately
            before it (objects whose scheduled death clock has
            arrived); almost always empty or a single slot.
        store_slots: per allocation, the root slot that holds the new
            object — the same LIFO free-slot reuse the mutator does.
        slot_count: total slots the frame needs (its high-water mark).
    """

    object_words: int
    total_objects: int
    releases: tuple[tuple[int, ...], ...]
    store_slots: tuple[int, ...]
    slot_count: int

    @property
    def total_words(self) -> int:
        return self.total_objects * self.object_words


def build_allocation_plan(
    schedule: LifetimeSchedule,
    alloc_words: int,
    *,
    object_words: int = 1,
    start_clock: int = 0,
) -> AllocationPlan:
    """Precompute the death/slot choreography of a mutator run.

    Replicates ``LifetimeDrivenMutator.run(alloc_words)`` step for
    step — the same clock reads, the same ``lifetime_for`` call order
    (so the schedule's RNG stream is untouched), the same min-heap of
    deaths and LIFO slot reuse — without touching any heap.
    """
    if alloc_words < 1:
        raise ValueError(
            f"allocation budget must be positive, got {alloc_words!r}"
        )
    if object_words < 1:
        raise ValueError(
            f"object size must be at least 1 word, got {object_words!r}"
        )
    total = -(-alloc_words // object_words)
    releases: list[tuple[int, ...]] = []
    store_slots: list[int] = []
    deaths: list[tuple[int, int]] = []
    free_slots: list[int] = []
    slot_count = 0
    clock = start_clock
    for index in range(total):
        due: list[int] = []
        while deaths and deaths[0][0] <= clock:
            _, slot = heapq.heappop(deaths)
            free_slots.append(slot)
            due.append(slot)
        releases.append(tuple(due))
        if free_slots:
            slot = free_slots.pop()
        else:
            slot = slot_count
            slot_count += 1
        store_slots.append(slot)
        lifetime = schedule.lifetime_for(clock, index)
        if lifetime <= 0:
            raise ValueError(
                f"schedule produced non-positive lifetime {lifetime!r}"
            )
        heapq.heappush(deaths, (clock + object_words + lifetime, slot))
        clock += object_words
    return AllocationPlan(
        object_words=object_words,
        total_objects=total,
        releases=tuple(releases),
        store_slots=tuple(store_slots),
        slot_count=slot_count,
    )


def execute_plan(collector: Collector, plan: AllocationPlan) -> Frame:
    """Drive ``collector`` through a precomputed plan, windowed.

    Pushes one frame on the collector's root set (pre-sized to the
    plan's slot high-water mark; empty slots are invisible to root
    enumeration) and allocates the whole plan through bump windows.
    Returns the frame, still holding the plan's end-of-run live set —
    callers wanting the equilibrium graph for latency probes use it
    as-is, then clear it.

    This is the benchmark's timed region: keep it free of anything
    that is not collector work or the minimal root bookkeeping.
    """
    frame = collector.roots.push_frame()
    slots = frame._slots
    slots.extend([None] * plan.slot_count)
    releases = plan.releases
    store = plan.store_slots
    words = plan.object_words
    total = plan.total_objects
    reserve = collector.reserve_window
    done = 0
    while done < total:
        # The reservation below may collect, so the releases due before
        # the window's first allocation must land first — exactly where
        # the per-object mutator applies them.  Releases due *inside*
        # the window are invisible to the heap until the next
        # collection, so applying them at their per-object points in
        # the loop below preserves equivalence.
        for slot in releases[done]:
            slots[slot] = None
        first, end = reserve(total - done, words)
        count = end - first
        slots[store[done]] = first
        for index in range(done + 1, done + count):
            first += 1
            for slot in releases[index]:
                slots[slot] = None
            slots[store[index]] = first
        done += count
    return frame
