"""Lifetime-driven synthetic mutators.

The analytical experiments (Table 1, Figure 1, the equilibrium check,
the anti-prediction demonstration) need workloads whose object
lifetimes follow a prescribed distribution exactly.  A
:class:`LifetimeDrivenMutator` allocates plain (pointer-free) objects
through a collector, holds each in a root slot, and clears the slot
when the object's scheduled death time arrives — the object then
becomes garbage for the collector to discover.

Pointer-free objects are faithful to the radioactive decay model's
Assumption 2 ("live objects have no other distinguishing
characteristics"): the collector can observe nothing about an object
except where it resides.
"""

from __future__ import annotations

import heapq
from typing import Callable, Protocol

from repro.gc.collector import Collector
from repro.heap.roots import Frame, RootSet

__all__ = ["LifetimeDrivenMutator", "LifetimeSchedule"]


class LifetimeSchedule(Protocol):
    """Assigns a lifetime (in clock words) to each allocated object."""

    def lifetime_for(self, clock: int, index: int) -> int:
        """Lifetime of the object allocated at ``clock`` (``index``-th).

        Returned lifetimes are measured in allocation-clock words from
        the moment of allocation; they must be positive.
        """
        ...


class LifetimeDrivenMutator:
    """Drives a collector with a scheduled-lifetime workload.

    Args:
        collector: the collector under test (its ``roots`` must be the
            same object as ``roots``).
        roots: the machine root set; the mutator pushes one frame and
            keeps every live object in a slot of it.
        schedule: the lifetime assignment.
        object_words: size of each allocated object.
    """

    def __init__(
        self,
        collector: Collector,
        roots: RootSet,
        schedule: LifetimeSchedule,
        *,
        object_words: int = 1,
    ) -> None:
        if object_words < 1:
            raise ValueError(
                f"object size must be at least 1 word, got {object_words!r}"
            )
        self.collector = collector
        self.roots = roots
        self.schedule = schedule
        self.object_words = object_words
        self._frame: Frame = roots.push_frame()
        self._free_slots: list[int] = []
        #: (death clock, slot) min-heap of scheduled deaths.
        self._deaths: list[tuple[int, int]] = []
        self._allocated = 0
        #: Observer invoked after every allocation with the current clock.
        self.on_step: Callable[[int], None] | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def live_objects(self) -> int:
        """Objects currently held live by the mutator."""
        return len(self._deaths)

    @property
    def live_words(self) -> int:
        return self.live_objects * self.object_words

    @property
    def allocations(self) -> int:
        return self._allocated

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Release due objects, then allocate one object.

        This is the inner loop of every synthetic experiment, so
        :meth:`_release_due` and :meth:`_hold` are inlined with direct
        access to the frame's slot list.
        """
        collector = self.collector
        clock = collector.heap.clock
        deaths = self._deaths
        slots = self._frame._slots
        free_slots = self._free_slots
        while deaths and deaths[0][0] <= clock:
            _, slot = heapq.heappop(deaths)
            slots[slot] = None
            free_slots.append(slot)
        words = self.object_words
        obj = collector.allocate(words)
        if free_slots:
            slot = free_slots.pop()
            slots[slot] = obj.obj_id
        else:
            slots.append(obj.obj_id)
            slot = len(slots) - 1
        lifetime = self.schedule.lifetime_for(clock, self._allocated)
        if lifetime <= 0:
            raise ValueError(
                f"schedule produced non-positive lifetime {lifetime!r}"
            )
        heapq.heappush(deaths, (clock + words + lifetime, slot))
        self._allocated += 1
        if self.on_step is not None:
            self.on_step(collector.heap.clock)

    def run(self, words: int) -> None:
        """Allocate at least ``words`` words of objects."""
        heap = self.collector.heap
        target = heap.clock + words
        step = self.step
        while heap.clock < target:
            step()

    def run_objects(self, count: int) -> None:
        """Allocate exactly ``count`` objects."""
        step = self.step
        for _ in range(count):
            step()

    def release_due(self) -> None:
        """Release objects whose death time has arrived (public form).

        ``step`` does this automatically before each allocation; the
        Table 1 experiment calls it explicitly so that live storage can
        be sampled exactly *at* a cohort boundary.
        """
        self._release_due(self.collector.heap.clock)

    def held_ids(self) -> list[int]:
        """Ids of the objects the mutator currently keeps live."""
        return list(self._frame.ids())

    def release_all(self) -> None:
        """Drop every live object (end-of-run cleanup)."""
        while self._deaths:
            _, slot = heapq.heappop(self._deaths)
            self._frame.set(slot, None)
            self._free_slots.append(slot)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _hold(self, obj_id: int) -> int:
        if self._free_slots:
            slot = self._free_slots.pop()
            self._frame.set_id(slot, obj_id)
            return slot
        return self._frame.push_id(obj_id)

    def _release_due(self, clock: int) -> None:
        while self._deaths and self._deaths[0][0] <= clock:
            _, slot = heapq.heappop(self._deaths)
            self._frame.set(slot, None)
            self._free_slots.append(slot)
