"""Other lifetime distributions, for contrast with radioactive decay.

The paper argues (Section 9, discussing Hayes) that survival rates of
long-lived objects are either roughly uniform — the decay model — or
*decrease* with age, and that both regimes favor non-predictive
collection; survival rates that increase with age (the strong
generational hypothesis) favor conventional collection.  These
schedules realize all three regimes so experiments can compare:

* :class:`FixedLifetimeSchedule` — every object lives exactly ``L``
  words (survival jumps from 1 to 0 at age ``L``: strongly
  age-predictable, the best case for any predictor).
* :class:`UniformLifetimeSchedule` — lifetimes uniform on [lo, hi).
* :class:`WeibullSchedule` — shape < 1 gives survival rates that
  *increase* with age (strong generational hypothesis); shape > 1
  gives rates that decrease with age (iterated-process-like);
  shape = 1 degenerates to radioactive decay.
* :class:`BimodalSchedule` — the weak generational hypothesis: most
  objects die very young, the rest live long.
"""

from __future__ import annotations

import math
import random

__all__ = [
    "BimodalSchedule",
    "FixedLifetimeSchedule",
    "UniformLifetimeSchedule",
    "WeibullSchedule",
]


class FixedLifetimeSchedule:
    """Every object lives exactly ``lifetime`` words."""

    def __init__(self, lifetime: int) -> None:
        if lifetime <= 0:
            raise ValueError(f"lifetime must be positive, got {lifetime!r}")
        self.lifetime = lifetime

    def lifetime_for(self, clock: int, index: int) -> int:
        return self.lifetime


class UniformLifetimeSchedule:
    """Lifetimes uniform on [lo, hi)."""

    def __init__(self, lo: int, hi: int, *, seed: int = 0) -> None:
        if not 0 < lo < hi:
            raise ValueError(f"need 0 < lo < hi, got lo={lo!r}, hi={hi!r}")
        self.lo = lo
        self.hi = hi
        self.seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Restart the lifetime stream deterministically from ``seed``."""
        self.seed = seed
        self._rng = random.Random(seed)

    def lifetime_for(self, clock: int, index: int) -> int:
        return self._rng.randrange(self.lo, self.hi)


class WeibullSchedule:
    """Weibull-distributed lifetimes.

    With scale λ and shape k the survival function is
    ``exp(-(t/λ)**k)``.  The hazard rate is increasing for k > 1
    (old objects die faster — favourable to non-predictive GC),
    decreasing for k < 1 (old objects die slower — the strong
    generational hypothesis), and constant for k = 1 (the decay
    model).
    """

    def __init__(self, scale: float, shape: float, *, seed: int = 0) -> None:
        if scale <= 0 or shape <= 0:
            raise ValueError(
                f"scale and shape must be positive, got {scale!r}, {shape!r}"
            )
        self.scale = scale
        self.shape = shape
        self.seed = seed
        self._rng = random.Random(seed)
        # Hoisted out of the per-object sampling loop; same value, same
        # power operation, so the lifetime stream is unchanged.
        self._inv_shape = 1.0 / shape

    def reseed(self, seed: int) -> None:
        """Restart the lifetime stream deterministically from ``seed``."""
        self.seed = seed
        self._rng = random.Random(seed)

    def lifetime_for(self, clock: int, index: int) -> int:
        u = self._rng.random()
        sample = self.scale * (-math.log(1.0 - u)) ** self._inv_shape
        return max(1, int(math.ceil(sample)))


class BimodalSchedule:
    """Weak generational hypothesis: mostly infant deaths, some elders.

    A fraction ``young_fraction`` of objects die within
    ``young_lifetime`` words (uniformly); the rest draw an exponential
    lifetime with half-life ``old_half_life``.
    """

    def __init__(
        self,
        young_fraction: float,
        young_lifetime: int,
        old_half_life: float,
        *,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= young_fraction <= 1.0:
            raise ValueError(
                f"young fraction must be in [0, 1], got {young_fraction!r}"
            )
        if young_lifetime <= 0 or old_half_life <= 0:
            raise ValueError("lifetimes must be positive")
        self.young_fraction = young_fraction
        self.young_lifetime = young_lifetime
        self.old_half_life = old_half_life
        self.seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Restart the lifetime stream deterministically from ``seed``."""
        self.seed = seed
        self._rng = random.Random(seed)

    def lifetime_for(self, clock: int, index: int) -> int:
        rng = self._rng
        if rng.random() < self.young_fraction:
            return 1 + rng.randrange(self.young_lifetime)
        u = rng.random()
        sample = -self.old_half_life * math.log2(1.0 - u)
        return max(1, int(math.ceil(sample)))
