"""Iterated-process workloads (Section 7.2's 10dynamic pattern).

The paper's most instructive real benchmark, 10dynamic, is an iterated
process: during each phase almost everything allocated survives to the
end of the phase, and the phase ends in a "mass extinction, killing
off both young and old objects".  Survival rates then *decrease* with
age — "the opposite of those predicted by the strong generational
hypothesis" — because objects born early in a phase are old when the
extinction arrives, while young objects are populous at phase starts
when a long life lies ahead.

:class:`PhasedSchedule` models this directly at the lifetime level:
objects live until their phase's end (plus optionally a few phases of
carryover), with a small churn fraction dying quickly within the
phase.
"""

from __future__ import annotations

import random

__all__ = ["PhasedSchedule"]


class PhasedSchedule:
    """Mass-extinction lifetimes.

    Args:
        phase_words: length of one phase in allocation words.
        churn_fraction: fraction of objects that die quickly (within
            ``churn_lifetime`` words) instead of waiting for the
            extinction.
        churn_lifetime: upper bound on a churn object's lifetime.
        carryover_fraction: fraction of phase-surviving objects that
            live one extra phase (the paper's Table 5 shows ~23% of
            10dynamic's storage surviving into a second phase).
        seed: RNG seed.
    """

    def __init__(
        self,
        phase_words: int,
        *,
        churn_fraction: float = 0.1,
        churn_lifetime: int | None = None,
        carryover_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        if phase_words <= 0:
            raise ValueError(
                f"phase length must be positive, got {phase_words!r}"
            )
        if not 0.0 <= churn_fraction <= 1.0:
            raise ValueError(
                f"churn fraction must be in [0, 1], got {churn_fraction!r}"
            )
        if not 0.0 <= carryover_fraction <= 1.0:
            raise ValueError(
                f"carryover fraction must be in [0, 1], got "
                f"{carryover_fraction!r}"
            )
        self.phase_words = phase_words
        self.churn_fraction = churn_fraction
        self.churn_lifetime = (
            max(1, phase_words // 20)
            if churn_lifetime is None
            else churn_lifetime
        )
        if self.churn_lifetime <= 0:
            raise ValueError(
                f"churn lifetime must be positive, got {churn_lifetime!r}"
            )
        self.carryover_fraction = carryover_fraction
        self.seed = seed
        self._rng = random.Random(seed)

    def reseed(self, seed: int) -> None:
        """Restart the lifetime stream deterministically from ``seed``."""
        self.seed = seed
        self._rng = random.Random(seed)

    def phase_of(self, clock: int) -> int:
        return clock // self.phase_words

    def lifetime_for(self, clock: int, index: int) -> int:
        rng = self._rng
        if rng.random() < self.churn_fraction:
            return 1 + rng.randrange(self.churn_lifetime)
        phase_end = (self.phase_of(clock) + 1) * self.phase_words
        lifetime = phase_end - clock - 1
        if rng.random() < self.carryover_fraction:
            lifetime += self.phase_words
        return max(1, lifetime)
