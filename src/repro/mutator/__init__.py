"""Synthetic lifetime-driven workloads for the analytical experiments."""

from repro.mutator.base import LifetimeDrivenMutator, LifetimeSchedule
from repro.mutator.decay_mutator import (
    DecaySchedule,
    HalvingSchedule,
    decay_mutator,
)
from repro.mutator.phased import PhasedSchedule
from repro.mutator.synthetic import (
    BimodalSchedule,
    FixedLifetimeSchedule,
    UniformLifetimeSchedule,
    WeibullSchedule,
)

__all__ = [
    "BimodalSchedule",
    "DecaySchedule",
    "FixedLifetimeSchedule",
    "HalvingSchedule",
    "LifetimeDrivenMutator",
    "LifetimeSchedule",
    "PhasedSchedule",
    "UniformLifetimeSchedule",
    "WeibullSchedule",
    "decay_mutator",
]
