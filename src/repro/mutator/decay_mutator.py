"""The radioactive-decay workload (Section 2's model, executable).

:class:`DecaySchedule` draws each object's lifetime independently from
the exponential distribution with half-life ``h``; driving a collector
with it realizes the radioactive decay model exactly (memoryless,
no distinguishing characteristics).  :class:`HalvingSchedule` is the
deterministic idealization used by Table 1: within each cohort of
``cohort_words`` allocation, exactly half the storage survives each
subsequent cohort boundary — the "nicer numbers" the paper uses for
its worked example.
"""

from __future__ import annotations

import math
import random

from repro.core.decay import RadioactiveDecayModel
from repro.gc.collector import Collector
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator

__all__ = ["DecaySchedule", "HalvingSchedule", "decay_mutator"]


class DecaySchedule:
    """I.i.d. exponential lifetimes with the given half-life."""

    def __init__(self, half_life: float, *, seed: int = 0) -> None:
        self.model = RadioactiveDecayModel(half_life)
        self.seed = seed
        self._rng = random.Random(seed)
        # log of the survival ratio, hoisted out of the per-object
        # sampling loop.  The division below matches
        # RadioactiveDecayModel.sample_discrete_lifetime exactly, so the
        # lifetime stream is bit-identical to the uncached form.
        self._log_r = math.log(self.model.survival_ratio)

    def reseed(self, seed: int) -> None:
        """Restart the lifetime stream deterministically from ``seed``."""
        self.seed = seed
        self._rng = random.Random(seed)

    def lifetime_for(self, clock: int, index: int) -> int:
        # Inlined RadioactiveDecayModel.sample_discrete_lifetime with
        # the cached log term (see __init__).
        u = self._rng.random()
        lifetime = int(math.ceil(math.log(1.0 - u) / self._log_r))
        return 1 if lifetime < 1 else lifetime


class HalvingSchedule:
    """Deterministic cohort-halving lifetimes (Table 1's idealization).

    Objects are grouped into cohorts of ``cohort_words`` consecutive
    words of allocation.  Every object's death is aligned to a cohort
    boundary *after its cohort completes*: within each cohort, exactly
    half the objects survive one boundary, a quarter survive two, and
    so on.  Any mix of survivors therefore continues to halve at every
    boundary — the memorylessness of the decay model, made exact.

    The assignment uses the trailing-zeros trick: the ``i``-th object
    of a cohort survives ``trailing_zeros(i + 1) + 1`` boundaries,
    which makes the per-cohort counts exactly 1/2, 1/4, ... of the
    cohort.  (It assumes unit-size objects, so index-within-cohort and
    word-within-cohort coincide.)
    """

    def __init__(self, cohort_words: int) -> None:
        if cohort_words < 2:
            raise ValueError(
                f"cohort must be at least 2 words, got {cohort_words!r}"
            )
        self.cohort_words = cohort_words

    def lifetime_for(self, clock: int, index: int) -> int:
        cohort = self.cohort_words
        position = clock % cohort
        survives = ((position + 1) & -(position + 1)).bit_length()  # ntz + 1
        # Death at the boundary `survives` cohorts after this cohort
        # completes; the lifetime is measured from the allocation clock.
        completion = cohort - position
        return completion + survives * cohort - 1


def decay_mutator(
    collector: Collector,
    roots: RootSet,
    half_life: float,
    *,
    seed: int = 0,
    object_words: int = 1,
) -> LifetimeDrivenMutator:
    """Convenience constructor for a radioactive-decay mutator."""
    return LifetimeDrivenMutator(
        collector,
        roots,
        DecaySchedule(half_life, seed=seed),
        object_words=object_words,
    )
