"""Command-line interface: ``repro-gc`` (or ``python -m repro``).

Subcommands:

* ``list`` — show the available experiments and benchmarks;
* ``experiment NAME`` — regenerate one paper artifact (table1,
  figure1, table3, ...) and print it;
* ``all [--jobs N] [--no-cache] [--resume]`` — regenerate every
  artifact in order, fanning independent experiments across worker
  processes, serving unchanged artifacts from the ``.repro_cache/``
  artifact cache, and printing a per-experiment wall-clock table.
  Every completion is journalled to ``.repro_cache/journal.json``;
  ``--resume`` picks a killed sweep up where it stopped.  Per-task
  timeouts and retry budgets come from ``--task-timeout``/``--retries``
  (or the ``REPRO_TASK_TIMEOUT``/``REPRO_TASK_RETRIES`` environment
  knobs); a task that exhausts its retries is quarantined and reported
  without sinking the rest of the sweep;
* ``chaos`` — fault-injection harness: corrupt live collector state
  mid-replay (dangling slots, dropped remset entries, stale forwards,
  skipped roots, mis-renumbered steps) and require the verify layer to
  detect every corruption, printing the fault x collector detection
  matrix (``--output`` exports it as JSON; ``--safepoint`` defers each
  injection to a mutator safepoint with a live mark wavefront — an
  incremental gray stack or a concurrent marker holding its
  snapshot);
* ``bench`` — the performance suite: allocation throughput and
  full-collection latency per collector, persisted to
  ``BENCH_perf.json`` (``--quick`` for the CI smoke variant, which
  fails on a >30% throughput regression vs the committed record);
* ``metrics`` — the observability plane: run an experiment (default
  antiprediction) or a seeded collector sweep with the
  :mod:`repro.metrics` instrumentation armed, and render pause-cost
  histograms (p50/p95/max in words of work) plus the
  mark/copy/sweep/root decomposition; ``--json``/``--prometheus``
  switch the output format, ``--events`` dumps the NDJSON telemetry
  stream, ``--overhead`` checks the plane's wall-clock cost;
* ``bench NAME --collector KIND`` — run one of the six benchmarks
  under a chosen collector and print its GC statistics;
* ``analyze`` — print Section 5 quantities for a given (g, L);
* ``trace record|survival|profile`` — record a benchmark's lifetime
  trace to a file and re-analyze it offline;
* ``validate`` — run the reproduction self-check;
* ``verify`` — differential GC testing: replay one deterministic
  mutator script under every collector and require identical live
  graphs (shrinking any counterexample); ``--budgets`` runs the
  incremental collector's interruption-equivalence suite instead,
  replaying the script at several mark-slice budgets on both heap
  backends and requiring identical graphs, stats, and survivor sets;
  ``--concurrent`` runs the concurrent collector's off-thread-marking
  equivalence suite the same way (inline and worker-process markers
  must match the unbounded incremental run exactly); ``--resume`` runs
  the resume-equivalence suite: every collector on both backends is
  checkpoint/restored through its serialized snapshot at every
  allocation safepoint and must replay byte-identically to an
  uninterrupted run;
* ``snapshot save|load|verify`` — crash-consistent heap snapshots:
  checkpoint a live collector (heap contents, roots, collector state,
  stats) to a versioned, checksummed JSON file via the atomic write
  helpers, validate a file's integrity, or restore one into a fresh
  context;
* ``slo`` — the pause SLO gate: p99 incremental pause at most 1/50 of
  mark-sweep's full-collection p99, and p99 concurrent
  mutator-visible pause (handoff + reconcile) at most the incremental
  p99, on the decay and gcbench workloads, persisted to
  ``SLO_pause.json``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core import analysis
from repro.experiments.export import to_jsonable
from repro.experiments.harness import run_benchmark_under
from repro.experiments.runner import EXPERIMENTS, run_experiment
from repro.experiments.validate import run_validation
from repro.gc.registry import COLLECTOR_KINDS
from repro.programs.registry import (
    BENCHMARKS,
    EXTRA_BENCHMARKS,
    benchmark_names,
    get_benchmark,
)

__all__ = ["main"]

_COLLECTORS = COLLECTOR_KINDS


def _cmd_list(_: argparse.Namespace) -> int:
    print("experiments:")
    for experiment in EXPERIMENTS:
        print(f"  {experiment.name:<14} {experiment.paper_artifact}")
    print()
    print("benchmarks (the paper's Table 2):")
    for benchmark in BENCHMARKS:
        print(f"  {benchmark.name:<14} {benchmark.description}")
    print()
    print("extra workloads:")
    for benchmark in EXTRA_BENCHMARKS:
        print(f"  {benchmark.name:<14} {benchmark.description}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result, text = run_experiment(args.name)
    if args.json:
        print(json.dumps(to_jsonable(result), indent=2))
    else:
        print(text)
    return 0


def _cmd_all(args: argparse.Namespace) -> int:
    import time
    from pathlib import Path

    from repro.experiments.runner import run_experiments
    from repro.perf.bench import BENCH_FILENAME, record_all_run
    from repro.perf.cache import CACHE_DIR_NAME, ArtifactCache, source_digest
    from repro.perf.parallel import default_jobs
    from repro.resilience.atomic import atomic_write_json, atomic_write_text
    from repro.resilience.journal import JOURNAL_FILENAME, SweepJournal

    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        raise SystemExit(f"--jobs must be at least 1, got {jobs}")

    selected = EXPERIMENTS
    if args.only:
        wanted = {name.strip() for name in args.only.split(",")}
        unknown = wanted - {experiment.name for experiment in EXPERIMENTS}
        if unknown:
            raise SystemExit(f"unknown experiments: {sorted(unknown)}")
        selected = tuple(
            experiment
            for experiment in EXPERIMENTS
            if experiment.name in wanted
        )
    output = Path(args.output) if args.output else None
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
    cache = None if args.no_cache else ArtifactCache.default()

    names = [experiment.name for experiment in selected]
    digest = cache.digest if cache is not None else source_digest()
    journal_path = Path.cwd() / CACHE_DIR_NAME / JOURNAL_FILENAME
    if args.resume:
        journal = SweepJournal.resume(journal_path, names, digest)
        if journal.completed:
            print(
                f"resuming: {len(journal.completed)}/{len(names)} "
                f"experiments already journalled"
            )
    else:
        journal = SweepJournal.fresh(journal_path, names, digest)

    failures: list = []
    start = time.perf_counter()
    records = run_experiments(
        names,
        jobs=jobs,
        cache=cache,
        timeout=args.task_timeout,
        retries=args.retries,
        journal=journal,
        failures=failures,
    )
    wall_seconds = time.perf_counter() - start
    by_name = {record.name: record for record in records}
    for experiment in selected:
        record = by_name.get(experiment.name)
        print(f"=== {experiment.name}: {experiment.paper_artifact} ===")
        if record is None:
            print("(quarantined — see the failure report below)")
            print()
            continue
        print(record.text)
        print()
        if output is not None:
            atomic_write_text(
                output / f"{experiment.name}.txt", record.text + "\n"
            )
            atomic_write_json(
                output / f"{experiment.name}.json", record.payload
            )
    if output is not None:
        print(f"artifacts written to {output}/")
        print()
    cache_hits = sum(1 for record in records if record.cached)
    print("=== timing ===")
    print(f"{'experiment':<16} {'seconds':>8}  source")
    for record in records:
        source = "cache" if record.cached else "run"
        print(f"{record.name:<16} {record.seconds:>8.2f}  {source}")
    print(
        f"{'TOTAL (wall)':<16} {wall_seconds:>8.2f}  "
        f"jobs={jobs}, cache hits {cache_hits}/{len(records)}"
    )
    if failures:
        print()
        print(f"[FAIL] {len(failures)} experiment(s) quarantined:")
        for failure in failures:
            print(f"  - {failure.summary()}")
        print(
            "the journal keeps their quarantine record; rerun with "
            "--resume to retry just them"
        )
        return 1
    # A fully successful sweep needs no resume point.
    journal.discard()
    # The full regeneration's wall clock is part of the repo's perf
    # trajectory; partial runs (--only) would not be comparable.
    if len(selected) == len(EXPERIMENTS):
        entry = record_all_run(
            Path.cwd() / BENCH_FILENAME,
            jobs=jobs,
            seconds=wall_seconds,
            experiments=len(records),
            cache_hits=cache_hits,
        )
        speedup = entry.get("speedup_vs_serial_baseline")
        suffix = (
            f" ({speedup}x vs serial seed baseline)"
            if speedup is not None
            else ""
        )
        print(f"recorded in {BENCH_FILENAME}{suffix}")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.resilience.atomic import atomic_write_json
    from repro.resilience.chaos import (
        DetectionMatrix,
        run_chaos_matrix,
        run_snapshot_chaos,
    )

    events = None
    if args.events:
        from repro.metrics.events import EventStream

        events = EventStream()
    if args.collectors:
        collectors = tuple(args.collectors)
    elif args.safepoint:
        # Safepoint windows only open while a mark wavefront is live —
        # an in-thread incremental wavefront, or a concurrent cycle
        # whose marker holds the snapshot — so the mode targets the
        # two collectors that have one.
        collectors = ("incremental", "concurrent")
    else:
        collectors = _COLLECTORS
    try:
        matrix = run_chaos_matrix(
            seed=args.seed,
            op_count=args.ops,
            collectors=collectors,
            quick=args.quick,
            events=events,
            safepoint=args.safepoint,
        )
    except ValueError as exc:
        print(f"repro-gc chaos: error: {exc}", file=sys.stderr)
        return 2
    if not args.safepoint:
        # The snapshot-corrupt family rides along with every default
        # sweep: corrupted checkpoint files must fail restore() with
        # 100% detection.  Safepoint mode targets mid-wavefront state
        # corruption specifically, so it keeps its focused matrix.
        snapshot_matrix = run_snapshot_chaos(
            seed=args.seed,
            op_count=args.ops,
            collectors=collectors,
            quick=args.quick,
            events=events,
        )
        matrix = DetectionMatrix(
            seed=matrix.seed,
            op_count=matrix.op_count,
            collectors=matrix.collectors,
            kinds=matrix.kinds + snapshot_matrix.kinds,
            outcomes=matrix.outcomes + snapshot_matrix.outcomes,
        )
    if events is not None:
        events.write(Path(args.events))
        print(f"{len(events)} telemetry events written to {args.events}")
    if args.json:
        print(json.dumps(matrix.to_json(), indent=2))
    else:
        print(matrix.render())
    if args.output:
        path = Path(args.output)
        atomic_write_json(path, matrix.to_json())
        print(f"detection matrix written to {path}")
    if not matrix.ok:
        print()
        for outcome in matrix.failures():
            print(
                f"[FAIL] {outcome.fault} x {outcome.collector}: "
                f"{outcome.status} — {outcome.detail}",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.metrics.export import (
        registries_to_jsonable,
        render_summary,
        to_prometheus,
    )

    for option, value in (
        ("--repeats", args.repeats),
        ("--runs", args.runs),
        ("--jobs", args.jobs),
    ):
        if value is not None and value < 1:
            print(
                f"repro-gc metrics: error: {option} must be positive, "
                f"got {value}",
                file=sys.stderr,
            )
            return 2

    if args.overhead:
        from repro.metrics.sweep import measure_overhead

        result = measure_overhead(repeats=args.repeats)
        ratio = result["overhead_ratio"]
        print(
            f"metrics-off: {result['metrics_off_seconds'] * 1000:.1f}ms  "
            f"metrics-on: {result['metrics_on_seconds'] * 1000:.1f}ms  "
            f"overhead: {100 * (ratio - 1):+.1f}%"
        )
        if ratio > 1.0 + args.overhead_tolerance:
            print(
                f"[FAIL] overhead exceeds "
                f"{100 * args.overhead_tolerance:.0f}%"
            )
            return 1
        print(
            f"[PASS] within the {100 * args.overhead_tolerance:.0f}% "
            f"overhead budget"
        )
        return 0

    stream = None
    if args.sweep:
        from repro.metrics.sweep import run_metrics_sweep
        from repro.perf.parallel import default_jobs

        jobs = args.jobs if args.jobs is not None else default_jobs()
        sweep = run_metrics_sweep(
            runs=args.runs, jobs=jobs, seed=args.seed, quick=args.quick
        )
        registries = list(sweep["collectors"].values())
        source = (
            f"decay sweep: {args.runs} run(s) per collector, "
            f"seed {args.seed}, jobs {jobs}"
        )
    else:
        from repro.experiments.runner import run_experiment_instrumented

        _result, _text, session = run_experiment_instrumented(
            args.experiment
        )
        registries = session.registries()
        stream = session.stream
        source = f"experiment: {args.experiment}"

    if args.json:
        print(json.dumps(registries_to_jsonable(registries), indent=2))
    elif args.prometheus:
        print(to_prometheus(registries), end="")
    else:
        print(f"metrics — {source}")
        print()
        print(render_summary(registries))
    if args.output:
        from repro.resilience.atomic import atomic_write_json

        path = Path(args.output)
        atomic_write_json(path, registries_to_jsonable(registries))
        print(f"metrics written to {path}")
    if args.events:
        path = Path(args.events)
        if stream is None:
            print(
                "repro-gc metrics: --events requires an experiment run "
                "(the sweep workers do not share one stream)",
                file=sys.stderr,
            )
            return 2
        stream.write(path)
        print(f"{len(stream)} events written to {path}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.name is None:
        return _cmd_bench_suite(args)
    benchmark = get_benchmark(args.name)
    outcome = run_benchmark_under(
        benchmark, args.collector, scale=args.scale
    )
    print(f"benchmark  : {outcome.benchmark}")
    print(f"collector  : {outcome.collector}")
    print(f"allocated  : {outcome.words_allocated:,} words")
    print(f"peak live  : {outcome.peak_live_words:,} words")
    print(f"gc work    : {outcome.gc_work:,} words")
    print(f"mark/cons  : {outcome.mark_cons:.4f}")
    print(f"gc/mutator : {100 * outcome.gc_mutator_ratio:.1f}%")
    print(
        f"collections: {outcome.collections} "
        f"({outcome.minor_collections} minor)"
    )
    return 0


def _cmd_bench_suite(args: argparse.Namespace) -> int:
    """Bare ``repro-gc bench``: the perf suite + BENCH_perf.json."""
    from pathlib import Path

    from repro.perf.bench import (
        BENCH_FILENAME,
        build_report,
        compare_to_baseline,
        load_report,
        run_perf_suite,
        write_report,
    )

    path = Path.cwd() / BENCH_FILENAME
    baseline = load_report(path)
    mode = "quick" if args.quick else "full"
    print(f"perf suite ({mode}): allocation throughput and "
          f"full-collection latency per collector per heap backend")
    results = run_perf_suite(quick=args.quick)
    print(
        f"{'collector':<16} {'backend':<8} {'words/sec':>12} "
        f"{'collections':>12} {'collect mean':>13} {'collect max':>12}"
    )
    for bench in results:
        print(
            f"{bench.collector:<16} {bench.backend:<8} "
            f"{bench.alloc_words_per_sec:>12,.0f} "
            f"{bench.collections_during_alloc:>12} "
            f"{bench.full_collect_seconds_mean * 1000:>11.2f}ms "
            f"{bench.full_collect_seconds_max * 1000:>10.2f}ms"
        )
    report = build_report(results, quick=args.quick, previous=baseline)
    write_report(path, report)
    speedup = report.get("backend_speedup")
    if speedup:
        per = ", ".join(
            f"{kind} {ratio:.2f}x"
            for kind, ratio in sorted(speedup["per_collector"].items())
        )
        print(f"flat vs object speedup: mean {speedup['mean']:.2f}x ({per})")
    print(f"written to {path.name}")
    if args.no_baseline_check or baseline is None:
        return 0
    regressions = compare_to_baseline(
        report, baseline, tolerance=args.tolerance
    )
    if regressions:
        print()
        print(
            f"[FAIL] throughput regressed beyond "
            f"{100 * args.tolerance:.0f}% of the previous "
            f"{BENCH_FILENAME}:"
        )
        for message in regressions:
            print(f"  - {message}")
        return 1
    print(f"[PASS] no throughput regression vs previous {BENCH_FILENAME}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.runtime.machine import Machine
    from repro.trace.collector import TracingCollector
    from repro.trace.io import load_trace, save_trace
    from repro.trace.profile import storage_profile
    from repro.trace.recorder import LifetimeRecorder
    from repro.trace.survival import survival_table

    if args.trace_command == "record":
        benchmark = get_benchmark(args.benchmark)
        # A dry run sizes the sampling epoch from the total allocation.
        dry = Machine(TracingCollector)
        benchmark.run(dry, args.scale)
        epoch = max(1, dry.stats.words_allocated // args.epochs)
        machine = Machine(TracingCollector)
        recorder = LifetimeRecorder(machine, epoch)
        benchmark.run(machine, args.scale)
        trace = recorder.finish()
        save_trace(trace, args.output)
        print(
            f"recorded {trace.object_count:,} objects "
            f"({trace.words_allocated:,} words, epoch {epoch:,}) "
            f"to {args.output}"
        )
        return 0
    trace = load_trace(args.file)
    span = max(1, trace.end_clock - trace.start_clock)
    if args.trace_command == "survival":
        age_step = args.age_step or max(1, span // 12)
        print(
            survival_table(
                trace, age_step, bracket_count=args.brackets
            ).to_text()
        )
        return 0
    epoch = args.epoch or max(1, span // 20)
    print(storage_profile(trace, epoch).to_text())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.verify import generate_script, run_differential, shrink_script

    kinds = tuple(args.collectors)
    try:
        script = generate_script(
            args.ops, args.seed, max_live_words=args.max_live
        )
    except ValueError as exc:
        print(f"repro-gc verify: error: {exc}", file=sys.stderr)
        return 2
    checked = not args.unchecked
    if args.budgets is not None:
        return _verify_budgets(args, script, checked)
    if args.concurrent:
        return _verify_concurrent(args, script, checked)
    if args.resume:
        return _verify_resume(args, script, checked)
    if args.backends:
        from repro.verify.differential import run_backend_differential

        report = run_backend_differential(script, kinds, checked=checked)
        if report.ok:
            print(f"[PASS] {report.summary()}")
            for label in sorted(report.results):
                result = report.results[label]
                assert result is not None
                print(
                    f"       {label:<24} "
                    f"collections={result.collections:<4} "
                    f"checkpoints={len(result.checkpoints)}"
                )
            return 0
        print(f"[FAIL] {report.summary()}")
        return 1
    report = run_differential(script, kinds, checked=checked)
    if report.ok:
        print(f"[PASS] {report.summary()}")
        for kind in kinds:
            result = report.results[kind]
            assert result is not None
            print(
                f"       {kind:<14} collections={result.collections:<4} "
                f"checkpoints={len(result.checkpoints)}"
            )
        return 0
    print(f"[FAIL] {report.summary()}")
    if not args.no_shrink:
        print()
        print("shrinking the counterexample ...")

        def fails(candidate) -> bool:
            return not run_differential(
                candidate, kinds, checked=checked
            ).ok

        small = shrink_script(script, fails)
        print(f"minimal failing script ({len(small.ops)} ops):")
        print(small.to_text())
        final = run_differential(small, kinds, checked=checked)
        print()
        print(final.summary())
    return 1


def _verify_budgets(args: argparse.Namespace, script, checked: bool) -> int:
    """``verify --budgets``: the interruption-equivalence suite."""
    from repro.verify import shrink_script
    from repro.verify.budget import (
        DEFAULT_BUDGETS,
        run_budget_differential,
        run_budget_differential_all_backends,
    )

    budgets: tuple[int | None, ...]
    if args.budgets:
        parsed = []
        for token in args.budgets:
            if token in ("inf", "none"):
                parsed.append(None)
            else:
                try:
                    value = int(token)
                except ValueError:
                    print(
                        f"repro-gc verify: error: bad budget {token!r} "
                        f"(want a positive integer or 'inf')",
                        file=sys.stderr,
                    )
                    return 2
                if value < 1:
                    print(
                        f"repro-gc verify: error: budget must be "
                        f"positive, got {value}",
                        file=sys.stderr,
                    )
                    return 2
                parsed.append(value)
        budgets = tuple(parsed)
    else:
        budgets = DEFAULT_BUDGETS

    reports = run_budget_differential_all_backends(
        script, budgets=budgets, checked=checked
    )
    failing = {
        backend: report
        for backend, report in reports.items()
        if not report.ok
    }
    if not failing:
        for backend, report in sorted(reports.items()):
            print(f"[PASS] backend {backend}: {report.summary()}")
        return 0
    for backend, report in sorted(failing.items()):
        print(f"[FAIL] backend {backend}: {report.summary()}")
    if not args.no_shrink:
        backend = sorted(failing)[0]
        print()
        print(f"shrinking the counterexample (backend {backend}) ...")

        def fails(candidate) -> bool:
            return not run_budget_differential(
                candidate, budgets=budgets, backend=backend, checked=checked
            ).ok

        small = shrink_script(script, fails)
        print(f"minimal failing script ({len(small.ops)} ops):")
        print(small.to_text())
        final = run_budget_differential(
            small, budgets=budgets, backend=backend, checked=checked
        )
        print()
        print(final.summary())
    return 1


def _verify_concurrent(args: argparse.Namespace, script, checked: bool) -> int:
    """``verify --concurrent``: the off-thread-marking equivalence suite."""
    from repro.verify import shrink_script
    from repro.verify.concurrent import (
        run_concurrent_differential,
        run_concurrent_differential_all_backends,
    )

    reports = run_concurrent_differential_all_backends(script, checked=checked)
    failing = {
        backend: report
        for backend, report in reports.items()
        if not report.ok
    }
    if not failing:
        for backend, report in sorted(reports.items()):
            print(f"[PASS] backend {backend}: {report.summary()}")
        return 0
    for backend, report in sorted(failing.items()):
        print(f"[FAIL] backend {backend}: {report.summary()}")
    if not args.no_shrink:
        backend = sorted(failing)[0]
        print()
        print(f"shrinking the counterexample (backend {backend}) ...")

        def fails(candidate) -> bool:
            return not run_concurrent_differential(
                candidate, backend=backend, checked=checked
            ).ok

        small = shrink_script(script, fails)
        print(f"minimal failing script ({len(small.ops)} ops):")
        print(small.to_text())
        final = run_concurrent_differential(
            small, backend=backend, checked=checked
        )
        print()
        print(final.summary())
    return 1


def _verify_resume(args: argparse.Namespace, script, checked: bool) -> int:
    """``verify --resume``: the resume-equivalence suite."""
    from repro.verify import shrink_script
    from repro.verify.resume import (
        run_resume_differential,
        run_resume_differential_all_backends,
    )

    if args.resume_interval < 1:
        print(
            f"repro-gc verify: error: --resume-interval must be "
            f"positive, got {args.resume_interval}",
            file=sys.stderr,
        )
        return 2
    reports = run_resume_differential_all_backends(
        script, checked=checked, resume_interval=args.resume_interval
    )
    failing = {
        backend: report
        for backend, report in reports.items()
        if not report.ok
    }
    if not failing:
        for backend, report in sorted(reports.items()):
            print(f"[PASS] backend {backend}: {report.summary()}")
        return 0
    for backend, report in sorted(failing.items()):
        print(f"[FAIL] backend {backend}: {report.summary()}")
    if not args.no_shrink:
        backend = sorted(failing)[0]
        print()
        print(f"shrinking the counterexample (backend {backend}) ...")

        def fails(candidate) -> bool:
            return not run_resume_differential(
                candidate,
                backend=backend,
                checked=checked,
                resume_interval=args.resume_interval,
            ).ok

        small = shrink_script(script, fails)
        print(f"minimal failing script ({len(small.ops)} ops):")
        print(small.to_text())
        final = run_resume_differential(
            small,
            backend=backend,
            checked=checked,
            resume_interval=args.resume_interval,
        )
        print()
        print(final.summary())
    return 1


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.resilience.snapshot import (
        SnapshotError,
        checkpoint,
        load_snapshot,
        restore,
        save_snapshot,
    )

    path = Path(args.path)
    if args.snapshot_command == "save":
        from repro.gc.registry import collector_factory
        from repro.verify.differential import VERIFY_GEOMETRY
        from repro.verify.replay import generate_script, replay

        try:
            script = generate_script(args.ops, args.seed)
        except ValueError as exc:
            print(f"repro-gc snapshot: error: {exc}", file=sys.stderr)
            return 2
        captured: dict = {}
        factory = collector_factory(args.collector, VERIFY_GEOMETRY)

        def build(heap, roots):
            built = factory(heap, roots)
            captured["collector"] = built
            return built

        replay(script, build, name=args.collector)
        collector = captured["collector"]
        document = checkpoint(collector, args.collector, VERIFY_GEOMETRY)
        save_snapshot(path, document)
        payload = document["payload"]
        print(
            f"snapshot of {args.collector} on backend "
            f"{payload['backend']} (clock {collector.heap.clock}, "
            f"{len(list(collector.heap.all_objects()))} live objects) "
            f"written to {path}"
        )
        return 0
    try:
        document = load_snapshot(path)
    except SnapshotError as exc:
        print(f"[FAIL] {path}: {exc}", file=sys.stderr)
        return 1
    payload = document["payload"]
    descriptor = payload.get("collector", {})
    if args.snapshot_command == "verify":
        print(
            f"[PASS] {path}: valid version-{document['version']} "
            f"snapshot of {descriptor.get('kind')} on backend "
            f"{payload.get('backend')} "
            f"(checksum {document['checksum'][:12]}...)"
        )
        return 0
    try:
        heap, _roots, collector = restore(document)
    except SnapshotError as exc:
        print(f"[FAIL] {path}: {exc}", file=sys.stderr)
        return 1
    print(
        f"restored {collector.name} on backend {heap.backend_name}: "
        f"clock {heap.clock}, {len(list(heap.all_objects()))} live "
        f"objects, {collector.stats.collections} collections on record"
    )
    return 0


def _cmd_validate(_: argparse.Namespace) -> int:
    results = run_validation()
    failures = 0
    for result in results:
        mark = "PASS" if result.passed else "FAIL"
        print(f"[{mark}] {result.name}")
        print(f"       {result.detail}")
        if not result.passed:
            failures += 1
    print()
    print(
        f"{len(results) - failures}/{len(results)} paper claims verified"
    )
    return 1 if failures else 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf.slo import (
        SLO_FACTOR,
        SLO_FILENAME,
        run_pause_slo,
        write_slo_report,
    )

    mode = "quick" if args.quick else "full"
    print(
        f"pause SLO ({mode}): incremental p99 pause * {SLO_FACTOR} <= "
        f"mark-sweep full-collection p99, in words of work"
    )
    report = run_pause_slo(quick=args.quick, seed=args.seed)
    for name, verdict in report["workloads"].items():
        inc = verdict["incremental"]
        ratio = verdict["ratio"]
        mark = "PASS" if verdict["pass"] else "FAIL"
        print(
            f"[{mark}] {name:<8} incremental p99 "
            f"{inc['p99_pause_words']:>6} words over {inc['pauses']} "
            f"pauses vs full-GC p99 {verdict['full_p99_pause_words']:>6} "
            f"words (ratio 1/{ratio:.0f})"
            if ratio is not None
            else f"[{mark}] {name:<8} unmeasured — no pauses recorded"
        )
        conc = verdict.get("concurrent")
        if conc is not None:
            cmark = "PASS" if conc["pass"] else "FAIL"
            print(
                f"[{cmark}] {name:<8} concurrent mutator-visible p99 "
                f"{conc['p99_mutator_visible_pause_words']:>6} words over "
                f"{conc['pauses']} pauses vs incremental p99 "
                f"{conc['incremental_p99_pause_words']:>6} words"
                if conc["measured"]
                else f"[{cmark}] {name:<8} concurrent unmeasured — "
                f"no handoff pauses recorded"
            )
    if not args.no_write:
        path = Path(args.output) if args.output else Path.cwd() / SLO_FILENAME
        write_slo_report(path, report)
        print(f"written to {path.name}")
    return 0 if report["pass"] else 1


def _cmd_analyze(args: argparse.Namespace) -> int:
    g, load = args.g, args.load
    estimate = analysis.mark_cons_ratio(g, load)
    relative = analysis.relative_overhead(g, load)
    best = analysis.optimal_generation_fraction(load)
    print(f"g = {g}, L = {load}")
    print(f"l(g,g)                    = {analysis.live_fraction(g, g, load):.4f}")
    print(
        f"stable equilibrium holds  = "
        f"{analysis.stable_equilibrium_holds(g, load)}"
    )
    print(
        f"mark/cons (non-predictive) = {estimate.value:.4f}"
        f" ({'exact' if estimate.exact else 'lower bound'})"
    )
    print(
        f"mark/cons (mark/sweep)     = "
        f"{analysis.nongenerational_mark_cons(load):.4f}"
    )
    print(f"relative overhead          = {relative.value:.4f}")
    print(
        f"optimal g for this L       = {best.g:.4f} "
        f"(overhead {best.relative_overhead:.4f})"
    )
    return 0


def _parse_kinds(text: str | None) -> tuple[str, ...]:
    from repro.gc.registry import COLLECTOR_KINDS

    if not text:
        return COLLECTOR_KINDS
    kinds = tuple(part.strip() for part in text.split(",") if part.strip())
    unknown = [kind for kind in kinds if kind not in COLLECTOR_KINDS]
    if unknown:
        raise SystemExit(
            f"unknown collector kind(s): {', '.join(unknown)} "
            f"(known: {', '.join(COLLECTOR_KINDS)})"
        )
    return kinds


def _parse_backends(text: str | None) -> tuple[str, ...]:
    from repro.heap.backend import HEAP_BACKENDS

    if not text:
        return ("flat",)
    backends = tuple(
        part.strip() for part in text.split(",") if part.strip()
    )
    unknown = [name for name in backends if name not in HEAP_BACKENDS]
    if unknown:
        raise SystemExit(
            f"unknown heap backend(s): {', '.join(unknown)} "
            f"(known: {', '.join(HEAP_BACKENDS)})"
        )
    return backends


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service.server import HeapServer

    async def run() -> None:
        server = HeapServer(
            shards=args.shards,
            jobs=args.jobs,
            tenant_cap=args.tenant_cap,
            timeout=args.task_timeout,
            retries=args.task_retries,
        )
        port = await server.start(args.host, args.port)
        # The bound port on one parseable line, flushed immediately, so
        # scripts (and the CI smoke job) can serve on port 0 and read
        # back where the listener landed.
        print(f"repro-gc serve: listening on {args.host}:{port}", flush=True)
        print(
            f"  shards={args.shards} jobs={args.jobs} "
            f"tenant_cap={args.tenant_cap}",
            flush=True,
        )
        try:
            await server.serve_until_closed()
        finally:
            stats = server.stats()
            print(f"repro-gc serve: closed after {stats}", flush=True)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    import asyncio
    import json as json_module

    from repro.service.loadgen import build_plan, plan_fingerprint, run_load
    from repro.service.report import (
        build_scale_report,
        check_pause_regression,
        render_scale_report,
        validate_scale_report,
    )
    from repro.service.server import HeapServer

    plan = build_plan(
        args.tenants,
        seed=args.seed,
        profile=args.profile,
        kinds=_parse_kinds(args.kinds),
        backends=_parse_backends(args.backends),
        ops_per_tenant=args.ops,
    )
    if args.fingerprint:
        print(plan_fingerprint(plan))
        return 0

    async def run():
        if args.connect is not None:
            host, _, port_text = args.connect.rpartition(":")
            host = host or "127.0.0.1"
            result = await run_load(
                plan, host, int(port_text), connections=args.connections
            )
            if args.shutdown:
                from repro.service.loadgen import _Connection
                from repro.service.protocol import PROTOCOL_VERSION

                reader, writer = await asyncio.open_connection(
                    host, int(port_text)
                )
                connection = _Connection(reader, writer)
                await connection.request(
                    {"v": PROTOCOL_VERSION, "id": "load:bye", "op": "shutdown"}
                )
                await connection.close()
            return result, "server"
        server = HeapServer(
            shards=args.shards, jobs=args.jobs, tenant_cap=args.tenant_cap
        )
        port = await server.start()
        try:
            result = await run_load(
                plan, "127.0.0.1", port, connections=args.connections
            )
        finally:
            await server.close()
        return result, "self-serve"

    result, mode = asyncio.run(run())
    report = build_scale_report(plan, result, mode=mode)
    problems = validate_scale_report(report)
    print(render_scale_report(report))
    if problems:
        for problem in problems:
            print(f"schema: {problem}")
        return 1
    if result.error_total and not args.allow_errors:
        print(f"load run saw {result.error_total} error response(s)")
        return 1
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.report}")
    if args.check:
        with open(args.check, "r", encoding="utf-8") as handle:
            committed = json_module.load(handle)
        gate = validate_scale_report(committed)
        gate += check_pause_regression(
            report, committed, tolerance=args.tolerance
        )
        if gate:
            for problem in gate:
                print(f"gate: {problem}")
            return 1
        print(f"gate: p99 pauses within {args.tolerance}x of {args.check}")
    return 0


def _cmd_isolation(args: argparse.Namespace) -> int:
    from repro.service.isolation import run_isolation_suite

    report = run_isolation_suite(
        args.tenants,
        seed=args.seed,
        ops_per_tenant=args.ops,
        shards=args.shards,
        jobs=args.jobs,
        kinds=_parse_kinds(args.kinds),
        backends=_parse_backends(args.backends),
        interleave_seed=args.interleave_seed,
    )
    print(report.summary())
    if not report.ok and args.verbose:
        for divergence in report.divergences:
            if divergence.shrunk_script:
                print(f"--- shrunk script for {divergence.tenant} ---")
                print(divergence.shrunk_script)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gc",
        description=(
            "Reproduction of 'Generational Garbage Collection and the "
            "Radioactive Decay Model' (Clinger & Hansen, PLDI 1997)"
        ),
    )
    parser.add_argument(
        "--heap-backend",
        choices=("object", "flat"),
        default=None,
        help=(
            "heap representation for this run: 'object' (one Python "
            "object per heap object) or 'flat' (struct-of-arrays "
            "arenas); default comes from REPRO_HEAP_BACKEND, else 'flat'"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    sub = subparsers.add_parser("list", help="list experiments and benchmarks")
    sub.set_defaults(func=_cmd_list)

    sub = subparsers.add_parser(
        "experiment", help="regenerate one paper artifact"
    )
    sub.add_argument(
        "name", choices=[experiment.name for experiment in EXPERIMENTS]
    )
    sub.add_argument(
        "--json",
        action="store_true",
        help="emit the result as JSON instead of rendered text",
    )
    sub.set_defaults(func=_cmd_experiment)

    sub = subparsers.add_parser("all", help="regenerate every artifact")
    sub.add_argument(
        "--output",
        default=None,
        help="also write each artifact's text and JSON into this directory",
    )
    sub.add_argument(
        "--only",
        default=None,
        help="comma-separated experiment names to regenerate",
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for independent experiments "
            "(default: REPRO_JOBS or 1)"
        ),
    )
    sub.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore and do not update the artifact cache (.repro_cache/)",
    )
    sub.add_argument(
        "--resume",
        action="store_true",
        help=(
            "serve experiments already journalled in "
            ".repro_cache/journal.json by a killed or quarantine-"
            "shortened sweep of the same task set and source"
        ),
    )
    sub.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help=(
            "per-experiment wall-clock budget in seconds when running "
            "with --jobs > 1 (default: REPRO_TASK_TIMEOUT or none)"
        ),
    )
    sub.add_argument(
        "--retries",
        type=int,
        default=None,
        help=(
            "extra attempts before a failing experiment is "
            "quarantined (default: REPRO_TASK_RETRIES or 1)"
        ),
    )
    sub.set_defaults(func=_cmd_all)

    sub = subparsers.add_parser(
        "chaos",
        help=(
            "fault-injection harness: corrupt live collector state "
            "mid-replay and require the verify layer to notice"
        ),
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--ops", type=int, default=400, help="mutator script length"
    )
    sub.add_argument(
        "--quick",
        action="store_true",
        help="short script (CI smoke mode)",
    )
    sub.add_argument(
        "--collectors",
        nargs="+",
        choices=_COLLECTORS,
        default=None,
        help=(
            "collectors to target (default: all, or incremental and "
            "concurrent with --safepoint)"
        ),
    )
    sub.add_argument(
        "--safepoint",
        action="store_true",
        help=(
            "defer each injection to the first mutator safepoint where "
            "a mark wavefront is live (incremental gray stack non-"
            "empty, or a concurrent marker holding its snapshot), "
            "corrupting the collector mid-cycle"
        ),
    )
    sub.add_argument(
        "--output",
        default=None,
        help="also write the detection matrix as JSON to this path",
    )
    sub.add_argument(
        "--json",
        action="store_true",
        help="print the matrix as JSON instead of the rendered table",
    )
    sub.add_argument(
        "--events",
        default=None,
        help=(
            "write fault-injected/fault-detected telemetry as NDJSON "
            "to this path"
        ),
    )
    sub.set_defaults(func=_cmd_chaos)

    sub = subparsers.add_parser(
        "metrics",
        help=(
            "the observability plane: pause histograms (p50/p95/max in "
            "words) and the mark/copy/sweep/root decomposition, from an "
            "instrumented experiment or a seeded collector sweep"
        ),
    )
    sub.add_argument(
        "--experiment",
        default="antiprediction",
        choices=[experiment.name for experiment in EXPERIMENTS],
        help="experiment to run instrumented (default: antiprediction)",
    )
    sub.add_argument(
        "--sweep",
        action="store_true",
        help=(
            "instead of an experiment, fan seeded decay-workload runs "
            "of every collector over the parallel engine and merge "
            "their registries deterministically"
        ),
    )
    sub.add_argument(
        "--runs", type=int, default=1, help="sweep runs per collector"
    )
    sub.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="sweep worker processes (default: REPRO_JOBS or 1)",
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--quick",
        action="store_true",
        help="sweep only: ~6x smaller workload per cell",
    )
    sub.add_argument(
        "--json",
        action="store_true",
        help="emit the registries as JSON instead of the summary table",
    )
    sub.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format instead",
    )
    sub.add_argument(
        "--output",
        default=None,
        help="also write the registries as a JSON artifact to this path",
    )
    sub.add_argument(
        "--events",
        default=None,
        help=(
            "experiment mode only: write the telemetry event stream "
            "as NDJSON to this path"
        ),
    )
    sub.add_argument(
        "--overhead",
        action="store_true",
        help=(
            "measure metrics-on vs metrics-off wall-clock on the bench "
            "workload and fail if the overhead exceeds the tolerance"
        ),
    )
    sub.add_argument(
        "--overhead-tolerance",
        type=float,
        default=0.05,
        help="allowed fractional overhead for --overhead (default 0.05)",
    )
    sub.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="--overhead timing repetitions per mode (best-of-N)",
    )
    sub.set_defaults(func=_cmd_metrics)

    sub = subparsers.add_parser(
        "bench",
        help=(
            "no name: the perf suite (throughput/latency per collector, "
            "written to BENCH_perf.json); with a name: run that "
            "benchmark under one collector"
        ),
    )
    sub.add_argument("name", nargs="?", default=None, choices=benchmark_names())
    sub.add_argument(
        "--collector", choices=_COLLECTORS, default="stop-and-copy"
    )
    sub.add_argument("--scale", type=int, default=1, choices=(0, 1, 2))
    sub.add_argument(
        "--quick",
        action="store_true",
        help="perf suite only: ~8x smaller workloads (CI smoke mode)",
    )
    sub.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help=(
            "perf suite only: allowed fractional throughput drop vs "
            "the previous BENCH_perf.json (default 0.30)"
        ),
    )
    sub.add_argument(
        "--no-baseline-check",
        action="store_true",
        help="perf suite only: skip the regression comparison",
    )
    sub.set_defaults(func=_cmd_bench)

    sub = subparsers.add_parser(
        "trace", help="record and analyze lifetime traces"
    )
    trace_sub = sub.add_subparsers(dest="trace_command", required=True)
    rec = trace_sub.add_parser("record", help="record a benchmark's trace")
    rec.add_argument("benchmark", choices=benchmark_names())
    rec.add_argument("-o", "--output", required=True)
    rec.add_argument("--scale", type=int, default=0, choices=(0, 1, 2))
    rec.add_argument(
        "--epochs",
        type=int,
        default=50,
        help="death-time resolution: samples per run",
    )
    rec.set_defaults(func=_cmd_trace)
    srv = trace_sub.add_parser(
        "survival", help="survival-by-age table from a saved trace"
    )
    srv.add_argument("file")
    srv.add_argument("--age-step", type=int, default=None)
    srv.add_argument("--brackets", type=int, default=9)
    srv.set_defaults(func=_cmd_trace)
    prof = trace_sub.add_parser(
        "profile", help="live-storage profile from a saved trace"
    )
    prof.add_argument("file")
    prof.add_argument("--epoch", type=int, default=None)
    prof.set_defaults(func=_cmd_trace)

    sub = subparsers.add_parser(
        "validate",
        help="quick self-check: verify the paper's claims end to end",
    )
    sub.set_defaults(func=_cmd_validate)

    sub = subparsers.add_parser(
        "verify",
        help=(
            "differential GC check: replay one random mutator script "
            "under every collector and compare live graphs"
        ),
    )
    sub.add_argument(
        "--ops", type=int, default=2000, help="script length in ops"
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--collectors",
        nargs="+",
        choices=_COLLECTORS,
        default=list(_COLLECTORS),
        help="collectors to compare (first is the reference)",
    )
    sub.add_argument(
        "--max-live",
        type=int,
        default=40,
        help="live-storage budget the generated script stays under",
    )
    sub.add_argument(
        "--no-shrink",
        action="store_true",
        help="on failure, skip minimizing the counterexample",
    )
    sub.add_argument(
        "--unchecked",
        action="store_true",
        help="skip the per-collection heap-invariant audit",
    )
    sub.add_argument(
        "--backends",
        action="store_true",
        help=(
            "compare heap backends instead of collectors: replay the "
            "script per collector under both the object and the flat "
            "heap and require identical graphs, stats, pauses, and "
            "metrics event streams"
        ),
    )
    sub.add_argument(
        "--budgets",
        nargs="*",
        default=None,
        metavar="BUDGET",
        help=(
            "interruption-equivalence suite: replay the script under "
            "mark-sweep and under the incremental collector at each "
            "slice budget ('inf' = unbounded; default 1 7 64 inf), on "
            "both heap backends, and require identical graphs, stats, "
            "and survivor sets at every budget"
        ),
    )
    sub.add_argument(
        "--concurrent",
        action="store_true",
        help=(
            "concurrent-equivalence suite: replay the script under "
            "mark-sweep, the unbounded incremental collector, and the "
            "concurrent collector with both inline and worker-process "
            "markers, on both heap backends, and require identical "
            "graphs, stats, pause logs, and survivor sets"
        ),
    )
    sub.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume-equivalence suite: replay the script under every "
            "collector on both heap backends, checkpoint/restoring the "
            "entire context through its serialized snapshot at every "
            "allocation safepoint, and require checkpoints, stats, "
            "pauses, and survivors byte-identical to an uninterrupted "
            "run"
        ),
    )
    sub.add_argument(
        "--resume-interval",
        type=int,
        default=1,
        help=(
            "--resume only: checkpoint/restore after every Nth "
            "allocation safepoint (default 1 = every allocation)"
        ),
    )
    sub.set_defaults(func=_cmd_verify)

    sub = subparsers.add_parser(
        "snapshot",
        help=(
            "crash-consistent heap snapshots: save a checksummed "
            "checkpoint of a live collector, verify a snapshot file's "
            "integrity, or restore one into a fresh context"
        ),
    )
    snapshot_sub = sub.add_subparsers(dest="snapshot_command", required=True)
    save = snapshot_sub.add_parser(
        "save",
        help=(
            "replay a seeded mutator script under a collector and "
            "checkpoint the resulting live context to a file"
        ),
    )
    save.add_argument("path", help="snapshot file to write")
    save.add_argument(
        "--collector", choices=_COLLECTORS, default="generational"
    )
    save.add_argument(
        "--ops", type=int, default=600, help="mutator script length"
    )
    save.add_argument("--seed", type=int, default=0)
    save.set_defaults(func=_cmd_snapshot)
    load = snapshot_sub.add_parser(
        "load",
        help=(
            "validate a snapshot file (format, version, checksum) and "
            "restore it into a fresh heap/roots/collector context"
        ),
    )
    load.add_argument("path", help="snapshot file to read")
    load.set_defaults(func=_cmd_snapshot)
    ver = snapshot_sub.add_parser(
        "verify",
        help=(
            "validate a snapshot file's envelope and checksum without "
            "restoring it"
        ),
    )
    ver.add_argument("path", help="snapshot file to read")
    ver.set_defaults(func=_cmd_snapshot)

    sub = subparsers.add_parser(
        "slo",
        help=(
            "pause SLO gate: require the incremental collector's p99 "
            "pause to be at most 1/50 of mark-sweep's full-collection "
            "p99 on the decay and gcbench workloads, and write the "
            "measured report to SLO_pause.json"
        ),
    )
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--quick",
        action="store_true",
        help="~3x smaller decay workload (CI smoke mode)",
    )
    sub.add_argument(
        "--output",
        default=None,
        help="report path (default: ./SLO_pause.json)",
    )
    sub.add_argument(
        "--no-write",
        action="store_true",
        help="measure and judge without touching the report file",
    )
    sub.set_defaults(func=_cmd_slo)

    sub = subparsers.add_parser(
        "analyze", help="print Section 5 quantities for (g, L)"
    )
    sub.add_argument("--g", type=float, default=0.25)
    sub.add_argument("--load", type=float, default=3.5)
    sub.set_defaults(func=_cmd_analyze)

    sub = subparsers.add_parser(
        "serve",
        help=(
            "GC-as-a-service: host tenant heaps behind a line-JSON TCP "
            "server, sharded across worker processes"
        ),
    )
    sub.add_argument("--host", default="127.0.0.1")
    sub.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (0 binds an ephemeral port and prints it)",
    )
    sub.add_argument("--shards", type=int, default=2)
    sub.add_argument(
        "--jobs",
        type=int,
        default=0,
        help=(
            "worker processes for shard batches; 0 runs shards inline "
            "in the server process (deterministic reference mode)"
        ),
    )
    sub.add_argument(
        "--tenant-cap",
        type=int,
        default=None,
        help="per-shard open-tenant limit (admission control)",
    )
    sub.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="seconds before a wedged shard batch is drained",
    )
    sub.add_argument(
        "--task-retries",
        type=int,
        default=None,
        help="replay attempts for a lost shard batch",
    )
    sub.set_defaults(func=_cmd_serve)

    sub = subparsers.add_parser(
        "load",
        help=(
            "closed-loop load generator: seeded multi-tenant traffic "
            "against a live server (--connect) or a self-hosted one"
        ),
    )
    sub.add_argument("--tenants", type=int, default=200)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument(
        "--profile",
        choices=("decay", "burst", "session-tail", "mixed"),
        default="mixed",
    )
    sub.add_argument(
        "--kinds",
        default=None,
        help="comma-separated collector kinds (default: all seven)",
    )
    sub.add_argument(
        "--backends",
        default=None,
        help="comma-separated heap backends (default: flat)",
    )
    sub.add_argument(
        "--ops", type=int, default=300, help="ops per tenant (approx)"
    )
    sub.add_argument("--connections", type=int, default=8)
    sub.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="drive an already-running server instead of self-hosting",
    )
    sub.add_argument(
        "--shutdown",
        action="store_true",
        help="send a shutdown op after the load (with --connect)",
    )
    sub.add_argument(
        "--shards", type=int, default=2, help="self-hosted server shards"
    )
    sub.add_argument(
        "--jobs", type=int, default=0, help="self-hosted server jobs"
    )
    sub.add_argument("--tenant-cap", type=int, default=None)
    sub.add_argument(
        "--report",
        default=None,
        help="write the scale report JSON to this path",
    )
    sub.add_argument(
        "--check",
        default=None,
        metavar="REPORT",
        help=(
            "gate against a committed scale report: schema validity "
            "plus p99 mutator-visible pause regression"
        ),
    )
    sub.add_argument(
        "--tolerance",
        type=float,
        default=1.25,
        help="allowed p99 growth factor for --check",
    )
    sub.add_argument(
        "--fingerprint",
        action="store_true",
        help="print the plan fingerprint (no traffic) and exit",
    )
    sub.add_argument(
        "--allow-errors",
        action="store_true",
        help="do not fail the run on error responses",
    )
    sub.set_defaults(func=_cmd_load)

    sub = subparsers.add_parser(
        "isolation",
        help=(
            "tenant-isolation suite: interleaved service runs must "
            "match per-tenant serial replays byte for byte"
        ),
    )
    sub.add_argument("--tenants", type=int, default=8)
    sub.add_argument("--seed", type=int, default=0)
    sub.add_argument("--ops", type=int, default=160)
    sub.add_argument("--shards", type=int, default=2)
    sub.add_argument("--jobs", type=int, default=0)
    sub.add_argument("--kinds", default=None)
    sub.add_argument("--backends", default=None)
    sub.add_argument("--interleave-seed", type=int, default=None)
    sub.add_argument(
        "--verbose",
        action="store_true",
        help="print shrunk divergence scripts",
    )
    sub.set_defaults(func=_cmd_isolation)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.heap_backend is not None:
        # Exported rather than threaded through every call site so the
        # choice also reaches worker processes spawned by `all`.
        import os

        from repro.heap.backend import ENV_BACKEND

        os.environ[ENV_BACKEND] = args.heap_backend
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
