"""An S-expression reader producing heap-allocated Scheme data.

The paper's benchmarks are Scheme programs; the interpreter
(:mod:`repro.runtime.interp`) runs a useful subset of Scheme directly
against the simulated heap, and this reader turns program text into
the heap list structure the interpreter evaluates.  Reading allocates
— exactly as ``read`` does in a real Scheme — so "the source code is
read only once, before the measured portion" is a meaningful sentence
here too.

Supported syntax: proper lists, dotted pairs, integers (fixnums),
decimals (boxed flonums), ``#t``/``#f``, characters ``#\\x``,
strings, symbols, ``'x`` quote sugar, and ``;`` comments.
"""

from __future__ import annotations

from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum, SchemeValue

__all__ = ["ReaderError", "read", "read_all"]


class ReaderError(ValueError):
    """Malformed program text."""


_DELIMITERS = set("()'\";")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
        elif char == ";":
            while index < length and text[index] != "\n":
                index += 1
        elif char in "()'":
            tokens.append(char)
            index += 1
        elif char == '"':
            end = index + 1
            while end < length and text[end] != '"':
                end += 1
            if end >= length:
                raise ReaderError("unterminated string literal")
            tokens.append(text[index : end + 1])
            index = end + 1
        elif char == "#" and index + 1 < length and text[index + 1] == "\\":
            if index + 2 >= length:
                raise ReaderError("unterminated character literal")
            tokens.append(text[index : index + 3])
            index += 3
        else:
            end = index
            while (
                end < length
                and not text[end].isspace()
                and text[end] not in _DELIMITERS
            ):
                end += 1
            tokens.append(text[index:end])
            index = end
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._position = 0

    def peek(self) -> str | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ReaderError("unexpected end of input")
        self._position += 1
        return token

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._tokens)


def _atom(machine: Machine, token: str) -> SchemeValue:
    if token == "#t":
        return True
    if token == "#f":
        return False
    if token.startswith("#\\"):
        return token[2]  # a character immediate
    if token.startswith('"'):
        return machine.make_string(token[1:-1])
    try:
        return Fixnum(int(token))
    except ValueError:
        pass
    try:
        return machine.make_flonum(float(token))
    except ValueError:
        pass
    return machine.intern(token)


def _read_expr(machine: Machine, stream: _TokenStream) -> SchemeValue:
    token = stream.next()
    if token == "'":
        quoted = _read_expr(machine, stream)
        return machine.cons(
            machine.intern("quote"), machine.cons(quoted, None)
        )
    if token == "(":
        return _read_list(machine, stream)
    if token == ")":
        raise ReaderError("unexpected ')'")
    return _atom(machine, token)


def _read_list(machine: Machine, stream: _TokenStream) -> SchemeValue:
    items: list[SchemeValue] = []
    tail: SchemeValue = None
    while True:
        token = stream.peek()
        if token is None:
            raise ReaderError("unterminated list")
        if token == ")":
            stream.next()
            break
        if token == ".":
            stream.next()
            tail = _read_expr(machine, stream)
            if stream.next() != ")":
                raise ReaderError("malformed dotted pair")
            break
        items.append(_read_expr(machine, stream))
    result = tail
    for item in reversed(items):
        result = machine.cons(item, result)
    return result


def read(machine: Machine, text: str) -> SchemeValue:
    """Read exactly one expression from the text."""
    stream = _TokenStream(_tokenize(text))
    expr = _read_expr(machine, stream)
    if not stream.exhausted:
        raise ReaderError("trailing tokens after expression")
    return expr


def read_all(machine: Machine, text: str) -> list[SchemeValue]:
    """Read every expression in the text (a program)."""
    stream = _TokenStream(_tokenize(text))
    expressions = []
    while not stream.exhausted:
        expressions.append(_read_expr(machine, stream))
    return expressions
