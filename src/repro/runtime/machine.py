"""The runtime machine: heap + collector + write barrier + roots.

:class:`Machine` is the mutator-facing façade the benchmark programs
run against.  It wires together a simulated heap, a collector, the
write barrier, the root set, and a static area for interned symbols,
and exposes Scheme-flavoured constructors and accessors (``cons``,
``car``, ``vector_set``, flonum arithmetic, ...).

Rooting model: every live :class:`~repro.runtime.values.Ref` handle
held by Python code is a GC root, via a root provider registered with
the root set.  This mirrors the stack maps/handle scopes of real
runtimes and lets benchmark code be written as ordinary Python while
remaining GC-safe (a collection can strike inside any constructor).

Static area discipline: objects in the static area (symbols and their
names) are immutable after creation and may only reference other
static objects.  Collectors treat the static area as a boundary — it
is never condemned — so a static-to-dynamic pointer would be unsound;
the machine rejects such stores.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.gc.collector import Collector
from repro.gc.stats import GcStats
from repro.heap.backend import make_heap
from repro.heap.barrier import WriteBarrier
from repro.heap.heap import HeapError, SimulatedHeap
from repro.heap.object_model import HeapObject
from repro.heap.roots import RootSet
from repro.runtime.values import (
    FLONUM_WORDS,
    PAIR_WORDS,
    SYMBOL_WORDS,
    Fixnum,
    Ref,
    SchemeValue,
    word_size_of_string,
    word_size_of_vector,
)

__all__ = ["CollectorFactory", "Machine"]

#: Builds a collector over a freshly created heap and root set.
CollectorFactory = Callable[[SimulatedHeap, RootSet], Collector]


class Machine:
    """A complete simulated runtime for one benchmark execution."""

    def __init__(
        self,
        collector_factory: CollectorFactory,
        *,
        heap_backend: str | None = None,
    ) -> None:
        self.heap = make_heap(heap_backend)
        self.roots = RootSet()
        self.collector = collector_factory(self.heap, self.roots)
        self.barrier = WriteBarrier(self.collector.remember_store)
        self.static = self.heap.add_space("static", None)
        self._handles: dict[int, int] = {}
        self.roots.add_provider(self._handle_ids)
        self._symbols: dict[str, Ref] = {}
        #: Callbacks invoked with each dynamically allocated object.
        self._allocation_hooks: list[Callable[[HeapObject], None]] = []
        #: Mutator operations executed (reads, stores, arithmetic).
        #: Together with words allocated this is the simulator's proxy
        #: for "mutator time" in Table 3: programs like sboyer that
        #: trade allocation for pointer comparisons keep their mutator
        #: cost while shedding their GC cost.
        self.operations = 0

    # ------------------------------------------------------------------
    # Handles (Python-side roots)
    # ------------------------------------------------------------------

    def _retain(self, obj_id: int) -> None:
        self._handles[obj_id] = self._handles.get(obj_id, 0) + 1

    def _release(self, obj_id: int) -> None:
        count = self._handles.get(obj_id)
        if count is None:
            return
        if count <= 1:
            del self._handles[obj_id]
        else:
            self._handles[obj_id] = count - 1

    def _handle_ids(self) -> Iterable[int]:
        # Snapshot: a handle's __del__ may run at any bytecode, and
        # mutating the dict during root enumeration would be an error.
        return list(self._handles)

    @property
    def handle_count(self) -> int:
        return len(self._handles)

    # ------------------------------------------------------------------
    # Value encoding
    # ------------------------------------------------------------------

    def _encode(self, value: SchemeValue) -> object:
        """Program value -> slot value (id for handles, raw immediates)."""
        if isinstance(value, Ref):
            return value.obj.obj_id
        if value is None or isinstance(value, (bool, Fixnum)):
            return value
        if isinstance(value, str) and len(value) == 1:
            return value  # a character immediate
        if isinstance(value, (int, float)):
            raise TypeError(
                f"raw Python numbers cannot be stored in the heap; wrap "
                f"ints with Fixnum and box floats with make_flonum "
                f"(got {value!r})"
            )
        raise TypeError(f"not a storable Scheme value: {value!r}")

    def _decode(self, slot_value: object) -> SchemeValue:
        """Slot value -> program value (ids become fresh handles)."""
        if type(slot_value) is int:
            return Ref(self, self.heap.get(slot_value))
        return slot_value

    # ------------------------------------------------------------------
    # Stores
    # ------------------------------------------------------------------

    def _store(self, obj: HeapObject, slot: int, value: SchemeValue) -> None:
        self.operations += 1
        barrier = self.barrier
        if isinstance(value, Ref):
            # A live handle pins its object, so the handle's HeapObject
            # *is* the store target — no id round-trip needed.
            target = value.obj
            if obj.space is self.static and target.space is not self.static:
                raise HeapError(
                    "static objects may only reference static objects"
                )
            barrier.stores += 1
            barrier.pointer_stores += 1
            hook = barrier._hook
            if hook is not None:
                hook(obj, slot, target)
            self.heap.write_slot(obj, slot, target.obj_id)
        else:
            encoded = self._encode(value)
            barrier.stores += 1
            hook = barrier._hook
            if hook is not None:
                # The SATB barrier must see pointer *deletions* too:
                # overwriting a reference slot with an immediate kills
                # an edge just as surely as storing None.
                hook(obj, slot, None)
            self.heap.write_slot(obj, slot, encoded)

    def _require(self, value: SchemeValue, kind: str) -> HeapObject:
        if not isinstance(value, Ref) or value.obj.kind != kind:
            raise TypeError(f"expected a {kind}, got {value!r}")
        return value.obj

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    def _notify(self, obj: HeapObject) -> None:
        for hook in self._allocation_hooks:
            hook(obj)

    def add_allocation_hook(self, hook: Callable[[HeapObject], None]) -> None:
        self._allocation_hooks.append(hook)

    def cons(self, car: SchemeValue, cdr: SchemeValue) -> Ref:
        """Allocate a pair (2 words).

        The two initializing stores are inlined from :meth:`_store`: a
        fresh pair is never in the static area (so the static-reference
        check cannot fire) and slots 0/1 exist by construction (so the
        bounds and dangling checks cannot fire either).  Barrier counts
        and the remember-store hook are identical to ``_store``.
        """
        obj = self.collector.allocate(PAIR_WORDS, 2, "pair")
        ref = Ref(self, obj)
        fields = obj.fields
        barrier = self.barrier
        hook = barrier._hook
        self.operations += 2
        barrier.stores += 2
        if isinstance(car, Ref):
            target = car.obj
            barrier.pointer_stores += 1
            if hook is not None:
                hook(obj, 0, target)
            fields[0] = target.obj_id
        else:
            fields[0] = self._encode(car)
        if isinstance(cdr, Ref):
            target = cdr.obj
            barrier.pointer_stores += 1
            if hook is not None:
                hook(obj, 1, target)
            fields[1] = target.obj_id
        else:
            fields[1] = self._encode(cdr)
        if self._allocation_hooks:
            self._notify(obj)
        return ref

    def make_vector(self, length: int, fill: SchemeValue = None) -> Ref:
        """Allocate a vector (length + 1 words)."""
        obj = self.collector.allocate(
            word_size_of_vector(length), length, "vector"
        )
        ref = Ref(self, obj)
        if fill is not None:
            for slot in range(length):
                self._store(obj, slot, fill)
        self._notify(obj)
        return ref

    def make_flonum(self, value: float) -> Ref:
        """Box an IEEE double (4 words, §7.2's flonum representation)."""
        obj = self.collector.allocate(FLONUM_WORDS, 0, "flonum")
        obj.payload = float(value)
        ref = Ref(self, obj)
        self._notify(obj)
        return ref

    def make_string(self, text: str) -> Ref:
        """Allocate a string (1 + ceil(n/4) words)."""
        obj = self.collector.allocate(
            word_size_of_string(len(text)), 0, "string"
        )
        obj.payload = text
        ref = Ref(self, obj)
        self._notify(obj)
        return ref

    def intern(self, name: str) -> Ref:
        """Return the interned symbol for ``name`` (static area).

        Symbols and their print names live in the static area, are
        never collected, and do not advance the allocation clock —
        matching the paper's setup, where the static area holds "code,
        constants, and global data" outside the measured heap.
        """
        existing = self._symbols.get(name)
        if existing is not None:
            return existing
        string_obj = self.heap.allocate(
            word_size_of_string(len(name)),
            0,
            self.static,
            "string",
            advance_clock=False,
        )
        string_obj.payload = name
        symbol_obj = self.heap.allocate(
            SYMBOL_WORDS, 1, self.static, "symbol", advance_clock=False
        )
        symbol_obj.payload = name
        self.heap.write_field(symbol_obj, 0, string_obj)
        ref = Ref(self, symbol_obj)
        self._symbols[name] = ref
        return ref

    # ------------------------------------------------------------------
    # Pairs
    # ------------------------------------------------------------------

    def car(self, pair: SchemeValue) -> SchemeValue:
        self.operations += 1
        if not isinstance(pair, Ref) or pair.obj.kind != "pair":
            raise TypeError(f"expected a pair, got {pair!r}")
        value = pair.obj.fields[0]
        if type(value) is int:
            return Ref(self, self.heap.get(value))
        return value

    def cdr(self, pair: SchemeValue) -> SchemeValue:
        self.operations += 1
        if not isinstance(pair, Ref) or pair.obj.kind != "pair":
            raise TypeError(f"expected a pair, got {pair!r}")
        value = pair.obj.fields[1]
        if type(value) is int:
            return Ref(self, self.heap.get(value))
        return value

    def set_car(self, pair: SchemeValue, value: SchemeValue) -> None:
        self._store(self._require(pair, "pair"), 0, value)

    def set_cdr(self, pair: SchemeValue, value: SchemeValue) -> None:
        self._store(self._require(pair, "pair"), 1, value)

    # ------------------------------------------------------------------
    # Vectors
    # ------------------------------------------------------------------

    def vector_length(self, vector: SchemeValue) -> int:
        return len(self._require(vector, "vector").fields)

    def vector_ref(self, vector: SchemeValue, index: int) -> SchemeValue:
        self.operations += 1
        obj = self._require(vector, "vector")
        if not 0 <= index < len(obj.fields):
            raise IndexError(
                f"vector index {index} out of range 0..{len(obj.fields) - 1}"
            )
        value = obj.fields[index]
        if type(value) is int:
            return Ref(self, self.heap.get(value))
        return value

    def vector_set(
        self, vector: SchemeValue, index: int, value: SchemeValue
    ) -> None:
        obj = self._require(vector, "vector")
        if not 0 <= index < len(obj.fields):
            raise IndexError(
                f"vector index {index} out of range 0..{len(obj.fields) - 1}"
            )
        self._store(obj, index, value)

    # ------------------------------------------------------------------
    # Strings and symbols
    # ------------------------------------------------------------------

    def string_value(self, string: SchemeValue) -> str:
        return str(self._require(string, "string").payload)

    def symbol_name(self, symbol: SchemeValue) -> str:
        return str(self._require(symbol, "symbol").payload)

    # ------------------------------------------------------------------
    # Flonums
    # ------------------------------------------------------------------

    def flonum_value(self, flonum: SchemeValue) -> float:
        self.operations += 1
        payload = self._require(flonum, "flonum").payload
        assert isinstance(payload, float)
        return payload

    def _flonum_binop(
        self, a: SchemeValue, b: SchemeValue, op: Callable[[float, float], float]
    ) -> Ref:
        result = op(self.flonum_value(a), self.flonum_value(b))
        return self.make_flonum(result)

    def fl_add(self, a: SchemeValue, b: SchemeValue) -> Ref:
        """Flonum addition: allocates the boxed result, as Larceny does."""
        return self._flonum_binop(a, b, lambda x, y: x + y)

    def fl_sub(self, a: SchemeValue, b: SchemeValue) -> Ref:
        return self._flonum_binop(a, b, lambda x, y: x - y)

    def fl_mul(self, a: SchemeValue, b: SchemeValue) -> Ref:
        return self._flonum_binop(a, b, lambda x, y: x * y)

    def fl_div(self, a: SchemeValue, b: SchemeValue) -> Ref:
        return self._flonum_binop(a, b, lambda x, y: x / y)

    def fl_sqrt(self, a: SchemeValue) -> Ref:
        return self.make_flonum(self.flonum_value(a) ** 0.5)

    def fl_less(self, a: SchemeValue, b: SchemeValue) -> bool:
        return self.flonum_value(a) < self.flonum_value(b)

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Request a full collection (the paper's mutator-initiated GC)."""
        self.collector.collect()

    def full_collect_to_static(self) -> int:
        """§8.4's full collection: promote all live storage to static.

        "A full collection empties the remembered set and promotes all
        live storage to the static area.  Full collections occur only
        when requested explicitly by the mutator."  Returns the words
        promoted.  Promoted objects fall under the static-area
        discipline: later stores into them may only reference static
        objects (new dynamic data must not be reachable from the
        uncollected static area).
        """
        heap = self.heap
        reached = heap.reachable_from(self.roots.ids())
        promoted = 0
        for obj_id in reached:
            obj = heap.get(obj_id)
            if obj.space is not self.static:
                heap.move(obj, self.static)
                promoted += obj.size
        # Everything left in a dynamic space is garbage.
        for space in list(heap.spaces()):
            if space is self.static:
                continue
            for obj in list(space.objects()):
                heap.free(obj)
        self.collector.on_static_promotion()
        return promoted

    @property
    def stats(self) -> GcStats:
        return self.collector.stats

    @property
    def clock(self) -> int:
        """Words of dynamic allocation so far (the time axis)."""
        return self.heap.clock

    @property
    def mutator_work(self) -> int:
        """Mutator time proxy: words allocated plus operations executed."""
        return self.stats.words_allocated + self.operations

    def live_words(self) -> int:
        """Words currently reachable from the roots (an exact trace)."""
        total = 0
        for obj_id in self.heap.reachable_from(self.roots.ids()):
            obj = self.heap.get(obj_id)
            if obj.space is not self.static:
                total += obj.size
        return total

    def describe(self) -> str:
        return f"machine({self.collector.describe()})"
