"""Scheme-ish runtime values over the simulated heap.

The benchmark programs of Section 7 are Scheme programs; to reproduce
their allocation behaviour we provide a small Scheme-like data model
whose heap-allocated values live in the simulated heap:

==========  =====================  =========================
value       representation         heap cost (32-bit words)
==========  =====================  =========================
fixnum      :class:`Fixnum`        0 (immediate)
boolean     Python ``bool``        0 (immediate)
character   1-char Python ``str``  0 (immediate)
empty list  Python ``None``        0 (immediate)
pair        heap object "pair"     2
flonum      heap object "flonum"   4 (header, pad, 8 data bytes)
vector      heap object "vector"   length + 1
string      heap object "string"   ceil(length/4) + 1
symbol      heap object "symbol"   4 (interned, static area)
==========  =====================  =========================

The flonum cost reproduces the paper's observation (§7.2) that "each
of the 7 million floating point operations in nucleic2 allocates 16
bytes of heap storage: a header word, a word of padding, and two data
words".

Heap values are handled through :class:`Ref`, a smart handle: while a
``Ref`` is alive in Python, the object it names is a GC root (the
machine registers a root provider enumerating live handles).  This
plays the role of the register/stack map a real runtime maintains, and
CPython's reference counting releases handles promptly, so death times
remain accurate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.heap.object_model import HeapObject

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.machine import Machine

__all__ = [
    "Fixnum",
    "Ref",
    "SchemeValue",
    "fx",
    "word_size_of_string",
    "word_size_of_vector",
    "FLONUM_WORDS",
    "PAIR_WORDS",
    "SYMBOL_WORDS",
]

#: Heap cost of a pair (car + cdr; headerless cons cells, as in Larceny).
PAIR_WORDS = 2
#: Heap cost of a boxed IEEE double (§7.2: header, pad, two data words).
FLONUM_WORDS = 4
#: Heap cost of an interned symbol (header, name, hash, property slot).
SYMBOL_WORDS = 4


def word_size_of_vector(length: int) -> int:
    """Vector of n elements: header word plus one word per element."""
    if length < 0:
        raise ValueError(f"vector length must be non-negative, got {length!r}")
    return length + 1


def word_size_of_string(length: int) -> int:
    """String of n characters: header word plus 4 packed chars per word."""
    if length < 0:
        raise ValueError(f"string length must be non-negative, got {length!r}")
    return 1 + (length + 3) // 4


class Fixnum:
    """An immediate small integer (never heap-allocated).

    Raw Python ints cannot be stored in heap slots — the heap encodes
    references as ints — so fixnums are wrapped.  Small values are
    cached, mirroring tagged-immediate hardware where fixnums are free.
    """

    __slots__ = ("value",)
    _cache: dict[int, "Fixnum"] = {}

    def __new__(cls, value: int) -> "Fixnum":
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"fixnum requires an int, got {value!r}")
        cached = cls._cache.get(value)
        if cached is not None:
            return cached
        instance = super().__new__(cls)
        instance.value = value
        if -1024 <= value <= 1024:
            cls._cache[value] = instance
        return instance

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Fixnum) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("fx", self.value))

    def __repr__(self) -> str:
        return f"Fixnum({self.value})"


def fx(value: int) -> Fixnum:
    """Shorthand constructor for fixnums."""
    return Fixnum(value)


class Ref:
    """A rooted handle to a heap object.

    Creating a ``Ref`` registers its object with the machine's handle
    table (making it a root); dropping the last Python reference
    unregisters it.  Two handles are equal iff they name the same heap
    object.
    """

    __slots__ = ("machine", "obj", "__weakref__")

    def __init__(self, machine: "Machine", obj: HeapObject) -> None:
        self.machine = machine
        self.obj = obj
        # Inlined Machine._retain: handles are created on every heap
        # read, so the extra method call is measurable on pointer-heavy
        # workloads (boyer spends most of its time here).
        handles = machine._handles
        obj_id = obj.obj_id
        count = handles.get(obj_id)
        handles[obj_id] = 1 if count is None else count + 1

    def __del__(self) -> None:  # pragma: no cover - exercised implicitly
        try:
            # Inlined Machine._release (see __init__).
            handles = self.machine._handles
            obj_id = self.obj.obj_id
            count = handles.get(obj_id)
            if count is None:
                return
            if count <= 1:
                del handles[obj_id]
            else:
                handles[obj_id] = count - 1
        except Exception:
            # Interpreter shutdown can tear the machine down first;
            # losing a release then is harmless.
            pass

    @property
    def kind(self) -> str:
        return self.obj.kind

    @property
    def obj_id(self) -> int:
        return self.obj.obj_id

    def is_pair(self) -> bool:
        return self.obj.kind == "pair"

    def is_vector(self) -> bool:
        return self.obj.kind == "vector"

    def is_string(self) -> bool:
        return self.obj.kind == "string"

    def is_symbol(self) -> bool:
        return self.obj.kind == "symbol"

    def is_flonum(self) -> bool:
        return self.obj.kind == "flonum"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Ref) and other.obj.obj_id == self.obj.obj_id

    def __hash__(self) -> int:
        return hash(("ref", self.obj.obj_id))

    def __repr__(self) -> str:
        return f"Ref({self.obj.kind}#{self.obj.obj_id})"


#: The union of program-visible values: immediates and handles.
SchemeValue = object
