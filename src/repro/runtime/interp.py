"""A small Scheme interpreter over the simulated heap.

The paper's benchmarks are Scheme programs; this interpreter runs a
useful subset of Scheme directly against the
:class:`~repro.runtime.machine.Machine`, so workloads can be written
in the benchmarks' source language and their storage behaviour —
environments, closures, argument lists — lands in the simulated heap
under whichever collector the machine was built with.

Coverage: ``define``, ``lambda``, ``if``, ``cond``, ``let``, ``let*``,
``letrec``, ``begin``, ``quote``, ``set!``, ``and``, ``or``, ``when``,
``unless``, named ``let`` loops, and the primitive procedures a
Gabriel-style benchmark needs (pairs, vectors, fixnum and flonum
arithmetic, predicates).

Faithfulness notes:

* environments are heap structure — a chain of frames, each an
  association list of (symbol . value) pairs — so variable lookup and
  ``set!`` are real heap reads and barrier-visible writes;
* closures are heap vectors [params, body, env], so capturing an
  environment keeps it live exactly as a real implementation would;
* there is no tail-call optimization (evaluation is plain recursion);
  deep Scheme loops should be written with bounded recursion depth.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.machine import Machine
from repro.runtime.reader import read_all
from repro.runtime.values import Fixnum, Ref, SchemeValue

__all__ = ["Interpreter", "SchemeError"]


class SchemeError(RuntimeError):
    """A runtime error in interpreted code."""


class Interpreter:
    """One interpretation session over a machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        #: Global bindings: symbol name -> value.  Host-side, like a
        #: real implementation's global-variable cells.
        self.globals: dict[str, SchemeValue] = {}
        self._primitives: dict[str, Callable] = {}
        self._install_primitives()
        #: Expressions evaluated (a mutator work measure).
        self.steps = 0

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self, text: str) -> SchemeValue:
        """Read and evaluate a whole program; returns the last value."""
        result: SchemeValue = None
        for expr in read_all(self.machine, text):
            result = self.eval(expr, None)
        return result

    def eval(self, expr: SchemeValue, env: SchemeValue) -> SchemeValue:
        machine = self.machine
        self.steps += 1
        # Self-evaluating forms.
        if expr is None or isinstance(expr, (bool, Fixnum, str)):
            return expr
        if isinstance(expr, Ref) and not expr.is_pair():
            if expr.is_symbol():
                return self._lookup(expr, env)
            return expr  # strings, flonums, vectors evaluate to themselves

        head = machine.car(expr)
        if isinstance(head, Ref) and head.is_symbol():
            name = machine.symbol_name(head)
            special = _SPECIAL_FORMS.get(name)
            if special is not None:
                return special(self, machine.cdr(expr), env)
        procedure = self.eval(head, env)
        arguments = [
            self.eval(argument, env)
            for argument in self._iter(machine.cdr(expr))
        ]
        return self.apply(procedure, arguments)

    def apply(
        self, procedure: SchemeValue, arguments: list[SchemeValue]
    ) -> SchemeValue:
        machine = self.machine
        if (
            isinstance(procedure, Ref)
            and procedure.is_vector()
            and procedure.obj.payload == "closure"
        ):
            params = machine.vector_ref(procedure, 0)
            body = machine.vector_ref(procedure, 1)
            env = machine.vector_ref(procedure, 2)
            frame: SchemeValue = None
            names = list(self._iter(params))
            if len(names) != len(arguments):
                raise SchemeError(
                    f"arity mismatch: expected {len(names)} arguments, "
                    f"got {len(arguments)}"
                )
            for symbol, value in zip(names, arguments):
                frame = machine.cons(machine.cons(symbol, value), frame)
            extended = machine.cons(frame, env)
            result: SchemeValue = None
            for expr in self._iter(body):
                result = self.eval(expr, extended)
            return result
        if (
            isinstance(procedure, Ref)
            and procedure.is_vector()
            and isinstance(procedure.obj.payload, str)
            and procedure.obj.payload.startswith("primitive:")
        ):
            name = procedure.obj.payload.removeprefix("primitive:")
            return self._primitives[name](arguments)
        raise SchemeError(f"not a procedure: {procedure!r}")

    # ------------------------------------------------------------------
    # Environments (heap association-list chains)
    # ------------------------------------------------------------------

    def _lookup(self, symbol: Ref, env: SchemeValue) -> SchemeValue:
        binding = self._find_binding(symbol, env)
        if binding is not None:
            return self.machine.cdr(binding)
        name = self.machine.symbol_name(symbol)
        if name in self.globals:
            return self.globals[name]
        raise SchemeError(f"unbound variable: {name}")

    def _find_binding(self, symbol: Ref, env: SchemeValue) -> SchemeValue:
        machine = self.machine
        while env is not None:
            frame = machine.car(env)
            while frame is not None:
                binding = machine.car(frame)
                if machine.car(binding) == symbol:
                    return binding
                frame = machine.cdr(frame)
            env = machine.cdr(env)
        return None

    def _iter(self, lst: SchemeValue):
        machine = self.machine
        while lst is not None:
            yield machine.car(lst)
            lst = machine.cdr(lst)

    def _make_closure(
        self, params: SchemeValue, body: SchemeValue, env: SchemeValue
    ) -> Ref:
        machine = self.machine
        closure = machine.make_vector(3)
        closure.obj.payload = "closure"
        machine.vector_set(closure, 0, params)
        machine.vector_set(closure, 1, body)
        machine.vector_set(closure, 2, env)
        return closure

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def _install_primitives(self) -> None:
        machine = self.machine

        def fixnums(arguments, count=None):
            if count is not None and len(arguments) != count:
                raise SchemeError(f"expected {count} arguments")
            values = []
            for argument in arguments:
                if not isinstance(argument, Fixnum):
                    raise SchemeError(f"expected a fixnum, got {argument!r}")
                values.append(argument.value)
            return values

        def define(name: str, fn: Callable) -> None:
            self._primitives[name] = fn
            procedure = machine.make_vector(1)
            procedure.obj.payload = f"primitive:{name}"
            self.globals[name] = procedure

        define("+", lambda a: Fixnum(sum(fixnums(a))))
        define("*", lambda a: Fixnum(_product(fixnums(a))))
        define(
            "-",
            lambda a: Fixnum(
                -fixnums(a)[0]
                if len(a) == 1
                else fixnums(a)[0] - sum(fixnums(a)[1:])
            ),
        )
        define("quotient", lambda a: Fixnum(_quotient(*fixnums(a, 2))))
        define("remainder", lambda a: Fixnum(_remainder(*fixnums(a, 2))))
        define("=", lambda a: fixnums(a, 2)[0] == fixnums(a, 2)[1])
        define("<", lambda a: fixnums(a, 2)[0] < fixnums(a, 2)[1])
        define(">", lambda a: fixnums(a, 2)[0] > fixnums(a, 2)[1])
        define("<=", lambda a: fixnums(a, 2)[0] <= fixnums(a, 2)[1])
        define(">=", lambda a: fixnums(a, 2)[0] >= fixnums(a, 2)[1])

        define("cons", lambda a: machine.cons(a[0], a[1]))
        define("car", lambda a: machine.car(a[0]))
        define("cdr", lambda a: machine.cdr(a[0]))
        define("set-car!", lambda a: machine.set_car(a[0], a[1]))
        define("set-cdr!", lambda a: machine.set_cdr(a[0], a[1]))
        define("list", lambda a: _list_of(machine, a))
        define("null?", lambda a: a[0] is None)
        define(
            "pair?",
            lambda a: isinstance(a[0], Ref) and a[0].is_pair(),
        )
        define(
            "symbol?",
            lambda a: isinstance(a[0], Ref) and a[0].is_symbol(),
        )
        define("not", lambda a: a[0] is False)
        define("eq?", lambda a: _eqp(a[0], a[1]))
        define(
            "equal?",
            lambda a: __import__(
                "repro.runtime.interop", fromlist=["scheme_equal"]
            ).scheme_equal(machine, a[0], a[1]),
        )

        define(
            "make-vector",
            lambda a: machine.make_vector(
                fixnums(a[:1], 1)[0], a[1] if len(a) > 1 else None
            ),
        )
        define(
            "vector-ref",
            lambda a: machine.vector_ref(a[0], fixnums(a[1:], 1)[0]),
        )
        define(
            "vector-set!",
            lambda a: machine.vector_set(a[0], fixnums(a[1:2], 1)[0], a[2]),
        )
        define(
            "vector-length",
            lambda a: Fixnum(machine.vector_length(a[0])),
        )

        define("fl+", lambda a: machine.fl_add(a[0], a[1]))
        define("fl-", lambda a: machine.fl_sub(a[0], a[1]))
        define("fl*", lambda a: machine.fl_mul(a[0], a[1]))
        define("fl/", lambda a: machine.fl_div(a[0], a[1]))
        define("fl<", lambda a: machine.fl_less(a[0], a[1]))
        define("flsqrt", lambda a: machine.fl_sqrt(a[0]))
        define(
            "fixnum->flonum",
            lambda a: machine.make_flonum(float(fixnums(a, 1)[0])),
        )


def _product(values: list[int]) -> int:
    result = 1
    for value in values:
        result *= value
    return result


def _quotient(a: int, b: int) -> int:
    if b == 0:
        raise SchemeError("division by zero")
    return int(a / b)  # truncating, as Scheme's quotient


def _remainder(a: int, b: int) -> int:
    if b == 0:
        raise SchemeError("division by zero")
    return a - _quotient(a, b) * b


def _list_of(machine: Machine, items) -> SchemeValue:
    result: SchemeValue = None
    for item in reversed(items):
        result = machine.cons(item, result)
    return result


def _eqp(a: SchemeValue, b: SchemeValue) -> bool:
    if isinstance(a, Ref) and isinstance(b, Ref):
        return a.obj_id == b.obj_id
    return a is b or a == b


# ----------------------------------------------------------------------
# Special forms
# ----------------------------------------------------------------------


def _sf_quote(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    return interp.machine.car(rest)


def _sf_if(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    test = interp.eval(machine.car(rest), env)
    if test is not False:
        return interp.eval(machine.car(machine.cdr(rest)), env)
    alternative = machine.cdr(machine.cdr(rest))
    if alternative is None:
        return None
    return interp.eval(machine.car(alternative), env)


def _sf_define(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    target = machine.car(rest)
    if isinstance(target, Ref) and target.is_pair():
        # (define (name . params) body...)
        name = machine.car(target)
        params = machine.cdr(target)
        body = machine.cdr(rest)
        value = interp._make_closure(params, body, env)
    else:
        name = target
        value = interp.eval(machine.car(machine.cdr(rest)), env)
    interp.globals[machine.symbol_name(name)] = value
    return None


def _sf_lambda(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    return interp._make_closure(
        machine.car(rest), machine.cdr(rest), env
    )


def _sf_set(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    symbol = machine.car(rest)
    value = interp.eval(machine.car(machine.cdr(rest)), env)
    binding = interp._find_binding(symbol, env)
    if binding is not None:
        machine.set_cdr(binding, value)  # a barrier-visible store
        return None
    name = machine.symbol_name(symbol)
    if name in interp.globals:
        interp.globals[name] = value
        return None
    raise SchemeError(f"set! of unbound variable: {name}")


def _sf_begin(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    result: SchemeValue = None
    for expr in interp._iter(rest):
        result = interp.eval(expr, env)
    return result


def _sf_let(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    first = machine.car(rest)
    if isinstance(first, Ref) and first.is_symbol():
        return _named_let(interp, rest, env)
    frame: SchemeValue = None
    for binding in interp._iter(first):
        symbol = machine.car(binding)
        value = interp.eval(machine.car(machine.cdr(binding)), env)
        frame = machine.cons(machine.cons(symbol, value), frame)
    extended = machine.cons(frame, env)
    return _sf_begin(interp, machine.cdr(rest), extended)


def _named_let(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    # (let loop ((var init) ...) body...) — a self-recursive closure.
    machine = interp.machine
    name = machine.car(rest)
    bindings = machine.car(machine.cdr(rest))
    body = machine.cdr(machine.cdr(rest))
    params: SchemeValue = None
    arguments = []
    for binding in interp._iter(bindings):
        arguments.append(
            interp.eval(machine.car(machine.cdr(binding)), env)
        )
    for binding in reversed(list(interp._iter(bindings))):
        params = machine.cons(machine.car(binding), params)
    # Bind the loop name in a frame the closure's env includes.
    loop_frame = machine.cons(machine.cons(name, None), None)
    loop_env = machine.cons(loop_frame, env)
    closure = interp._make_closure(params, body, loop_env)
    machine.set_cdr(machine.car(loop_frame), closure)
    return interp.apply(closure, arguments)


def _sf_let_star(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    extended = env
    for binding in interp._iter(machine.car(rest)):
        symbol = machine.car(binding)
        value = interp.eval(machine.car(machine.cdr(binding)), extended)
        frame = machine.cons(machine.cons(symbol, value), None)
        extended = machine.cons(frame, extended)
    return _sf_begin(interp, machine.cdr(rest), extended)


def _sf_letrec(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    frame: SchemeValue = None
    bindings = list(interp._iter(machine.car(rest)))
    for binding in bindings:
        frame = machine.cons(
            machine.cons(machine.car(binding), None), frame
        )
    extended = machine.cons(frame, env)
    for binding in bindings:
        symbol = machine.car(binding)
        value = interp.eval(machine.car(machine.cdr(binding)), extended)
        cell = interp._find_binding(symbol, extended)
        machine.set_cdr(cell, value)
    return _sf_begin(interp, machine.cdr(rest), extended)


def _sf_cond(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    for clause in interp._iter(rest):
        test = machine.car(clause)
        if (
            isinstance(test, Ref)
            and test.is_symbol()
            and machine.symbol_name(test) == "else"
        ):
            return _sf_begin(interp, machine.cdr(clause), env)
        value = interp.eval(test, env)
        if value is not False:
            body = machine.cdr(clause)
            if body is None:
                return value
            return _sf_begin(interp, body, env)
    return None


def _sf_and(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    result: SchemeValue = True
    for expr in interp._iter(rest):
        result = interp.eval(expr, env)
        if result is False:
            return False
    return result


def _sf_or(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    for expr in interp._iter(rest):
        result = interp.eval(expr, env)
        if result is not False:
            return result
    return False


def _sf_when(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    if interp.eval(machine.car(rest), env) is not False:
        return _sf_begin(interp, machine.cdr(rest), env)
    return None


def _sf_unless(interp: Interpreter, rest: SchemeValue, env: SchemeValue):
    machine = interp.machine
    if interp.eval(machine.car(rest), env) is False:
        return _sf_begin(interp, machine.cdr(rest), env)
    return None


_SPECIAL_FORMS = {
    "quote": _sf_quote,
    "if": _sf_if,
    "define": _sf_define,
    "lambda": _sf_lambda,
    "set!": _sf_set,
    "begin": _sf_begin,
    "let": _sf_let,
    "let*": _sf_let_star,
    "letrec": _sf_letrec,
    "cond": _sf_cond,
    "and": _sf_and,
    "or": _sf_or,
    "when": _sf_when,
    "unless": _sf_unless,
}
