"""Scheme-ish runtime over the simulated heap: values, machine, interop."""

from repro.runtime.interop import (
    from_list,
    list_length,
    list_ref,
    scheme_equal,
    to_list,
    to_python,
)
from repro.runtime.interp import Interpreter, SchemeError
from repro.runtime.machine import CollectorFactory, Machine
from repro.runtime.reader import ReaderError, read, read_all
from repro.runtime.values import (
    FLONUM_WORDS,
    PAIR_WORDS,
    SYMBOL_WORDS,
    Fixnum,
    Ref,
    SchemeValue,
    fx,
    word_size_of_string,
    word_size_of_vector,
)

__all__ = [
    "FLONUM_WORDS",
    "PAIR_WORDS",
    "SYMBOL_WORDS",
    "CollectorFactory",
    "Fixnum",
    "Interpreter",
    "Machine",
    "ReaderError",
    "SchemeError",
    "Ref",
    "SchemeValue",
    "from_list",
    "fx",
    "list_length",
    "list_ref",
    "scheme_equal",
    "to_list",
    "read",
    "read_all",
    "to_python",
    "word_size_of_string",
    "word_size_of_vector",
]
