"""Conversion helpers between Python data and Scheme runtime data.

The benchmark programs build their working sets through the machine's
constructors; these helpers cover the recurring patterns (proper
lists, vectors of values, symbol lists) so benchmark code reads like
the Scheme it reproduces.
"""

from __future__ import annotations

from typing import Sequence

from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum, Ref, SchemeValue

__all__ = [
    "from_list",
    "list_length",
    "list_ref",
    "scheme_equal",
    "to_list",
    "to_python",
]


def from_list(machine: Machine, values: Sequence[SchemeValue]) -> SchemeValue:
    """Build a proper list (chain of pairs) from Python values.

    Elements may be immediates, handles, nested Python lists (converted
    recursively), Python ints (converted to fixnums), Python floats
    (boxed as flonums), and Python strings (interned as symbols —
    the convenient default for benchmark source expressions).
    """
    result: SchemeValue = None
    for value in reversed(values):
        result = machine.cons(_convert(machine, value), result)
    return result


def _convert(machine: Machine, value: object) -> SchemeValue:
    if isinstance(value, (list, tuple)):
        return from_list(machine, list(value))
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return Fixnum(value)
    if isinstance(value, float):
        return machine.make_flonum(value)
    if isinstance(value, str):
        return machine.intern(value)
    return value  # already a SchemeValue (Ref, Fixnum, None, ...)


def to_list(machine: Machine, value: SchemeValue) -> list[SchemeValue]:
    """Flatten a proper list into a Python list of Scheme values."""
    out: list[SchemeValue] = []
    while value is not None:
        if not (isinstance(value, Ref) and value.is_pair()):
            raise TypeError(f"improper list: unexpected tail {value!r}")
        out.append(machine.car(value))
        value = machine.cdr(value)
    return out


def to_python(machine: Machine, value: SchemeValue) -> object:
    """Deep-convert a Scheme value to plain Python data (for asserts).

    The empty list converts to ``[]`` (nil *is* the empty list in this
    runtime, exactly as in Scheme).
    """
    if value is None:
        return []
    if isinstance(value, bool):
        return value
    if isinstance(value, Fixnum):
        return value.value
    if isinstance(value, str):
        return value
    if isinstance(value, Ref):
        if value.is_pair():
            return [to_python(machine, item) for item in to_list(machine, value)]
        if value.is_symbol():
            return machine.symbol_name(value)
        if value.is_string():
            return machine.string_value(value)
        if value.is_flonum():
            return machine.flonum_value(value)
        if value.is_vector():
            return tuple(
                to_python(machine, machine.vector_ref(value, index))
                for index in range(machine.vector_length(value))
            )
    raise TypeError(f"cannot convert {value!r} to Python data")


def list_length(machine: Machine, value: SchemeValue) -> int:
    count = 0
    while value is not None:
        count += 1
        value = machine.cdr(value)
    return count


def list_ref(machine: Machine, value: SchemeValue, index: int) -> SchemeValue:
    for _ in range(index):
        value = machine.cdr(value)
    return machine.car(value)


def scheme_equal(machine: Machine, a: SchemeValue, b: SchemeValue) -> bool:
    """Structural equality (Scheme's ``equal?``) over runtime values."""
    stack: list[tuple[SchemeValue, SchemeValue]] = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is None or isinstance(x, (bool, Fixnum, str)):
            if x != y:
                return False
            continue
        if not isinstance(x, Ref) or not isinstance(y, Ref):
            return False
        if x == y:
            continue
        if x.kind != y.kind:
            return False
        if x.is_pair():
            stack.append((machine.car(x), machine.car(y)))
            stack.append((machine.cdr(x), machine.cdr(y)))
        elif x.is_vector():
            if machine.vector_length(x) != machine.vector_length(y):
                return False
            for index in range(machine.vector_length(x)):
                stack.append(
                    (
                        machine.vector_ref(x, index),
                        machine.vector_ref(y, index),
                    )
                )
        elif x.is_string():
            if machine.string_value(x) != machine.string_value(y):
                return False
        elif x.is_flonum():
            if machine.flonum_value(x) != machine.flonum_value(y):
                return False
        else:
            return False  # distinct symbols or unknown kinds
    return True
