"""The heap-invariant auditor: "checked mode" for collectors.

:func:`audit_collector` inspects a collector and its heap after (or
between) collections and checks the structural invariants that every
correct collector in this reproduction must maintain:

* **heap integrity** — space membership is consistent and no reference
  slot dangles (delegates to
  :meth:`repro.heap.heap.SimulatedHeap.check_integrity`);
* **root resolution / reachability closure** — every root id resolves
  to a live object, and the transitive closure from the roots can be
  traced without hitting a freed object (a collector that reclaims a
  live object fails here);
* **space registration** — every space the collector claims to manage
  (:meth:`~repro.gc.collector.Collector.managed_spaces`) is registered
  with the heap;
* **stats conservation** — every word allocated through the collector
  is either still resident in a managed space or accounted as
  reclaimed: ``words_allocated == resident + words_reclaimed``;
* **remembered-set completeness** — per collector family, every
  pointer that a partial collection would need to treat as a root has
  a slot-precise remembered-set entry (§8.4's situations 3, 5 and 6);
* **step structure** — the step renumbering bookkeeping of the
  non-predictive and hybrid collectors is self-consistent and, in the
  non-predictive collector's stop-and-copy mode, objects allocated
  since the last collection sit in non-increasing step order
  (allocation fills the steps from the top down);
* **tri-color wavefront** — for the incremental collector the audit
  accepts *in-cycle* snapshots (where garbage is legitimately still
  resident) and instead proves that an immediate drain-and-sweep
  would be safe: every gray object is on the wavefront, the predicted
  survivor set covers all root-reachable objects, and that set is
  closed under in-space references;
* **root-witness coverage** (optional) — when the caller supplies an
  independent ``expected_roots`` witness (ids the *mutator* believes
  are rooted), every witnessed id must be present in the collector's
  root set and resolve to a live object.  The chaos harness
  (:mod:`repro.resilience.chaos`) uses this to expose silently
  *skipped* roots, which are invisible to every check that reuses the
  collector's own root set.

The auditor is wired into collectors through the optional
``post_collection_hook``: :func:`enable_checked_mode` installs
:func:`assert_heap_invariants` so that every completed collection is
audited, which is how the differential oracle and the fuzz tests run.
Production runs leave the hook unset and pay nothing.

Conservation assumes the managed spaces exchange objects only through
the collector itself.  A full promotion to the static area
(:meth:`repro.runtime.machine.Machine.full_collect_to_static`) moves
words out from under the collector; disable checked mode around such
operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gc.collector import Collector
from repro.gc.concurrent import ConcurrentCollector
from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.gc.incremental import GRAY, WHITE, IncrementalCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.heap import HeapError

__all__ = [
    "AuditError",
    "AuditReport",
    "assert_heap_invariants",
    "audit_collector",
    "disable_checked_mode",
    "enable_checked_mode",
]


class AuditError(AssertionError):
    """A collector violated a heap invariant in checked mode."""

    def __init__(self, report: "AuditReport") -> None:
        super().__init__(report.summary())
        self.report = report


@dataclass(frozen=True)
class AuditReport:
    """The outcome of one audit pass.

    Attributes:
        collector: the audited collector's ``name``.
        checks: names of the checks that ran (skipped checks absent).
        violations: human-readable descriptions of every violation.
    """

    collector: str
    checks: tuple[str, ...]
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return (
                f"{self.collector}: {len(self.checks)} checks passed"
            )
        lines = "\n".join(f"  - {line}" for line in self.violations)
        return (
            f"{self.collector}: {len(self.violations)} invariant "
            f"violation(s):\n{lines}"
        )


def audit_collector(
    collector: Collector,
    *,
    expected_roots: "object | None" = None,
) -> AuditReport:
    """Run every applicable invariant check; never raises.

    Args:
        collector: the collector to audit.
        expected_roots: optional iterable of object ids that an
            *independent* witness (typically the mutator that drove the
            collector) believes are rooted.  When given, the audit adds
            a ``root-witness`` check failing for any witnessed id that
            the collector's root set no longer resolves — the only way
            to detect a silently skipped root, since every other check
            trusts the collector's own root set.
    """
    checks: list[str] = []
    violations: list[str] = []

    _check_heap_integrity(collector, checks, violations)
    _check_reachability(collector, checks, violations)
    _check_managed_spaces(collector, checks, violations)
    if expected_roots is not None:
        checks.append("root-witness")
        _check_root_witness(collector, expected_roots, violations)

    if isinstance(collector, GenerationalCollector):
        checks.append("remset-completeness")
        _check_generational_remsets(collector, violations)
    elif isinstance(collector, NonPredictiveCollector):
        checks.append("np-step-structure")
        _check_np_structure(collector, violations)
        if collector.use_remset:
            checks.append("remset-completeness")
            _check_np_remsets(collector, violations)
    elif isinstance(collector, HybridCollector):
        checks.append("hybrid-step-structure")
        _check_hybrid_structure(collector, violations)
        checks.append("remset-completeness")
        _check_hybrid_remsets(collector, violations)
    elif isinstance(collector, ConcurrentCollector):
        if collector.cycle_open:
            checks.append("concurrent-wavefront")
            _check_concurrent_wavefront(collector, violations)
        else:
            checks.append("tri-color-quiescent")
            if collector.gray_stack:
                violations.append(
                    f"tri-color: closed cycle left {len(collector.gray_stack)} "
                    f"entries on the gray stack"
                )
            if collector._payload is not None:
                violations.append(
                    "concurrent: closed cycle left a marker snapshot "
                    "pending (leaked handoff)"
                )
    elif isinstance(collector, IncrementalCollector):
        if collector.cycle_open:
            checks.append("tri-color-wavefront")
            _check_incremental_wavefront(collector, violations)
        else:
            checks.append("tri-color-quiescent")
            if collector.gray_stack:
                violations.append(
                    f"tri-color: closed cycle left {len(collector.gray_stack)} "
                    f"entries on the gray stack"
                )

    return AuditReport(
        collector=collector.name,
        checks=tuple(checks),
        violations=tuple(violations),
    )


def assert_heap_invariants(collector: Collector) -> None:
    """Audit the collector and raise :class:`AuditError` on violation.

    This is the function :func:`enable_checked_mode` installs as the
    post-collection hook.
    """
    report = audit_collector(collector)
    if not report.ok:
        raise AuditError(report)


def enable_checked_mode(collector: Collector) -> None:
    """Audit after every completed collection (testing/debugging).

    Also arms the heap's per-store dangling-id probe
    (:attr:`repro.heap.heap.SimulatedHeap.checked`), so bad stores fail
    at the store site instead of at the next audit.
    """
    collector.post_collection_hook = assert_heap_invariants
    collector.heap.checked = True


def disable_checked_mode(collector: Collector) -> None:
    collector.post_collection_hook = None
    collector.heap.checked = False


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------


def _check_heap_integrity(
    collector: Collector, checks: list[str], violations: list[str]
) -> None:
    checks.append("heap-integrity")
    try:
        collector.heap.check_integrity()
    except HeapError as exc:
        violations.append(f"heap integrity: {exc}")


def _check_reachability(
    collector: Collector, checks: list[str], violations: list[str]
) -> None:
    heap = collector.heap
    checks.append("root-resolution")
    dangling = heap.dangling_ids(collector.roots.ids())
    if dangling:
        violations.append(
            f"roots point at freed objects: {sorted(set(dangling))}"
        )
        return
    checks.append("reachability-closure")
    try:
        heap.reachable_from(collector.roots.ids())
    except HeapError as exc:
        violations.append(f"reachability closure: {exc}")


def _check_managed_spaces(
    collector: Collector, checks: list[str], violations: list[str]
) -> None:
    managed = collector.managed_spaces()
    if managed is None:
        return
    heap = collector.heap
    checks.append("space-registration")
    registered = set(heap.spaces())
    for space in managed:
        if space not in registered:
            violations.append(
                f"managed space {space.name!r} is not registered with "
                f"the heap"
            )
    checks.append("stats-conservation")
    stats = collector.stats
    resident = heap.resident_words(managed)
    balance = resident + stats.words_reclaimed
    if balance != stats.words_allocated:
        violations.append(
            f"stats conservation: allocated {stats.words_allocated} "
            f"words but resident ({resident}) + reclaimed "
            f"({stats.words_reclaimed}) = {balance}"
        )


def _check_root_witness(
    collector: Collector, expected_roots, violations: list[str]
) -> None:
    """Every witnessed root id must still be rooted and resolvable."""
    rooted = set(collector.roots.ids())
    heap = collector.heap
    missing = sorted(
        {
            int(obj_id)
            for obj_id in expected_roots
            if obj_id not in rooted
        }
    )
    if missing:
        violations.append(
            f"root witness: expected root ids {missing} are absent "
            f"from the collector's root set"
        )
        return
    dead = sorted(
        {
            int(obj_id)
            for obj_id in expected_roots
            if not heap.contains_id(obj_id)
        }
    )
    if dead:
        violations.append(
            f"root witness: expected root ids {dead} no longer "
            f"resolve to live objects"
        )


def _check_hybrid_structure(
    collector: HybridCollector, violations: list[str]
) -> None:
    try:
        collector.check_step_invariants()
    except AssertionError as exc:
        violations.append(f"step structure: {exc or 'assertion failed'}")


def _check_generational_remsets(
    collector: GenerationalCollector, violations: list[str]
) -> None:
    """Every old-to-young pointer must have a remembered slot."""
    heap = collector.heap
    for src_gen, space in enumerate(collector.spaces):
        if src_gen == 0:
            continue  # nursery sources are always traced
        for obj in space.objects():
            for slot, ref in enumerate(obj.fields):
                if type(ref) is not int or not heap.contains_id(ref):
                    continue
                dst_gen = collector.generation_index(heap.get(ref))
                if dst_gen is None or dst_gen >= src_gen:
                    continue
                if (obj.obj_id, slot) not in collector.remsets[src_gen]:
                    violations.append(
                        f"remset incomplete: gen-{src_gen} object "
                        f"{obj.obj_id} slot {slot} points at gen-"
                        f"{dst_gen} object {ref} without an entry"
                    )


def _check_np_remsets(
    collector: NonPredictiveCollector, violations: list[str]
) -> None:
    """Every protected-to-collectable pointer must be remembered."""
    heap = collector.heap
    j = collector.j
    for space in collector.steps[:j]:
        for obj in space.objects():
            for slot, ref in enumerate(obj.fields):
                if type(ref) is not int or not heap.contains_id(ref):
                    continue
                dst = collector.step_number(heap.get(ref))
                if dst is None or dst <= j:
                    continue
                if (obj.obj_id, slot) not in collector.remset:
                    violations.append(
                        f"remset incomplete: protected object "
                        f"{obj.obj_id} slot {slot} points at step-{dst} "
                        f"object {ref} without an entry"
                    )


def _check_np_structure(
    collector: NonPredictiveCollector, violations: list[str]
) -> None:
    try:
        collector.check_step_invariants()
    except AssertionError as exc:
        violations.append(f"step structure: {exc or 'assertion failed'}")
        return
    if collector.algorithm != "stop-and-copy":
        return
    # Stop-and-copy allocation fills the steps from the top down, so
    # objects allocated since the last pause must sit in non-increasing
    # step order as the allocation clock advances.
    pauses = collector.stats.pauses
    threshold = pauses[-1].clock if pauses else 0
    fresh: list[tuple[int, int]] = []
    for index, space in enumerate(collector.steps):
        for obj in space.objects():
            if obj.birth >= threshold:
                fresh.append((obj.birth, index))
    fresh.sort()
    for (birth_a, step_a), (birth_b, step_b) in zip(fresh, fresh[1:]):
        if step_b > step_a:
            violations.append(
                f"allocation order: object born at clock {birth_b} sits "
                f"in step {step_b + 1} above the step {step_a + 1} of an "
                f"older object born at clock {birth_a}"
            )
            return


def _check_incremental_wavefront(
    collector: IncrementalCollector, violations: list[str]
) -> None:
    """The SATB tri-color invariants of an *in-cycle* heap snapshot.

    Mid-cycle the heap legitimately holds garbage (SATB sweeps only to
    the cycle's snapshot), so the audit cannot demand resident ==
    reachable.  What it can demand is that closing the cycle *right
    now* would be safe.  Concretely:

    * every gray-stack entry resolves to a live in-space object that
      is not white (black entries are tolerated: conservative
      duplicates get skipped by the scan);
    * every gray-*colored* object is on the stack — a gray object the
      wavefront has forgotten would be swept while reachable, which is
      exactly the corruption the chaos harness's drop-remset fault
      models;
    * the predicted survivor set — non-white objects, objects born
      since the epoch, plus everything the remaining wavefront would
      mark through *current* fields — covers every root-reachable
      in-space object and is closed under in-space references, i.e.
      an immediate drain-and-sweep would free no reachable object and
      dangle no surviving slot.
    """
    heap = collector.heap
    space = collector.space
    epoch = collector.epoch_clock
    stack = list(collector.gray_stack)
    stack_set = set(stack)

    for oid in stack_set:
        if heap.space_if_live(oid) is not space:
            violations.append(
                f"tri-color: gray-stack id {oid} does not resolve to a "
                f"live object in the collector's space"
            )
        elif heap.color_of(oid) == WHITE:
            violations.append(
                f"tri-color: gray-stack id {oid} is colored white"
            )
    if violations:
        return

    resident = list(space.object_ids())
    for oid in resident:
        if heap.color_of(oid) == GRAY and oid not in stack_set:
            violations.append(
                f"tri-color: object {oid} is colored gray but absent "
                f"from the gray stack (lost wavefront entry)"
            )
    if violations:
        return

    # Predicted survivors of an immediate drain-and-sweep.
    survivors = {
        oid
        for oid in resident
        if heap.color_of(oid) != WHITE or heap.birth_of(oid) >= epoch
    }
    frontier = list(stack_set)
    while frontier:
        oid = frontier.pop()
        for _slot, ref in heap.ref_slots(oid):
            if (
                ref not in survivors
                and heap.space_if_live(ref) is space
                and heap.birth_of(ref) < epoch
            ):
                survivors.add(ref)
                frontier.append(ref)

    for oid in heap.reachable_from(collector.roots.ids()):
        if heap.space_if_live(oid) is space and oid not in survivors:
            violations.append(
                f"tri-color: root-reachable object {oid} would be swept "
                f"by an immediate cycle close"
            )
            return
    for oid in survivors:
        for slot, ref in heap.ref_slots(oid):
            if heap.space_if_live(ref) is space and ref not in survivors:
                violations.append(
                    f"tri-color: surviving object {oid} slot {slot} "
                    f"would dangle — its target {ref} would be swept"
                )
                return


def _check_concurrent_wavefront(
    collector: ConcurrentCollector, violations: list[str]
) -> None:
    """The concurrent collector's in-cycle invariants.

    Mid-cycle the parent heap is (legitimately) all-white: the mark
    wavefront lives in the worker's snapshot, so the incremental
    wavefront check would flag every reachable white object.  The
    concurrent variant instead predicts what *reconciliation* would
    compute right now: the marker's reachable set, plus every object
    colored non-white (SATB grays) or born since the epoch, plus the
    closure the reconcile scan would add from the SATB log and the
    current roots (skipping marker-marked ids, which reconcile treats
    as black).  That set must cover every root-reachable in-space
    object and be closed under in-space references — a marker result
    corrupted mid-handoff surfaces here as a would-be-swept reachable
    object or a would-dangle survivor slot.
    """
    heap = collector.heap
    space = collector.space
    epoch = collector.epoch_clock
    stack_set = set(collector.gray_stack)

    for oid in stack_set:
        if heap.space_if_live(oid) is not space:
            violations.append(
                f"tri-color: gray-stack id {oid} does not resolve to a "
                f"live object in the collector's space"
            )
        elif heap.color_of(oid) == WHITE:
            violations.append(
                f"tri-color: gray-stack id {oid} is colored white"
            )
    if violations:
        return

    resident = list(space.object_ids())
    for oid in resident:
        if heap.color_of(oid) == GRAY and oid not in stack_set:
            violations.append(
                f"tri-color: object {oid} is colored gray but absent "
                f"from the gray stack (lost wavefront entry)"
            )
    if violations:
        return

    pending = collector.pending_marked_ids()
    # Predicted survivors of an immediate reconcile-and-sweep.
    survivors = {
        oid
        for oid in resident
        if heap.color_of(oid) != WHITE or heap.birth_of(oid) >= epoch
    }
    survivors |= pending
    frontier = [oid for oid in stack_set if oid not in pending]
    for rid in collector.roots.ids():
        if (
            rid not in survivors
            and heap.space_if_live(rid) is space
            and heap.birth_of(rid) < epoch
        ):
            survivors.add(rid)
            frontier.append(rid)
    while frontier:
        oid = frontier.pop()
        for _slot, ref in heap.ref_slots(oid):
            if (
                ref not in survivors
                and heap.space_if_live(ref) is space
                and heap.birth_of(ref) < epoch
            ):
                survivors.add(ref)
                frontier.append(ref)

    for oid in heap.reachable_from(collector.roots.ids()):
        if heap.space_if_live(oid) is space and oid not in survivors:
            violations.append(
                f"concurrent: root-reachable object {oid} would be "
                f"swept by an immediate reconciliation"
            )
            return
    for oid in survivors:
        for slot, ref in heap.ref_slots(oid):
            if heap.space_if_live(ref) is space and ref not in survivors:
                violations.append(
                    f"concurrent: surviving object {oid} slot {slot} "
                    f"would dangle — its target {ref} would be swept"
                )
                return


def _check_hybrid_remsets(
    collector: HybridCollector, violations: list[str]
) -> None:
    """Situations 3, 5 and 6: dynamic-to-nursery pointers must be in
    ``remset_young``; protected-to-collectable pointers in
    ``remset_steps``."""
    heap = collector.heap
    j = collector.j
    for index, space in enumerate(collector.steps):
        src_step = index + 1
        for obj in space.objects():
            for slot, ref in enumerate(obj.fields):
                if type(ref) is not int or not heap.contains_id(ref):
                    continue
                target = heap.get(ref)
                if collector.in_nursery(target):
                    if (obj.obj_id, slot) not in collector.remset_young:
                        violations.append(
                            f"remset incomplete: step-{src_step} object "
                            f"{obj.obj_id} slot {slot} points at nursery "
                            f"object {ref} without a remset_young entry"
                        )
                    continue
                dst_step = collector.step_number(target)
                if dst_step is None or not src_step <= j < dst_step:
                    continue
                if (obj.obj_id, slot) not in collector.remset_steps:
                    violations.append(
                        f"remset incomplete: protected step-{src_step} "
                        f"object {obj.obj_id} slot {slot} points at "
                        f"step-{dst_step} object {ref} without a "
                        f"remset_steps entry"
                    )
