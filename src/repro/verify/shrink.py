"""Greedy delta-debugging shrinker for failing mutator scripts.

When the differential oracle (or checked mode) rejects a script, the
raw counterexample is usually hundreds of ops long.  `shrink_script`
reduces it with the classic ddmin strategy: repeatedly delete chunks
of ops, re-normalize the remainder so it stays a valid script (see
:func:`repro.verify.replay.normalize_ops`), and keep any deletion
after which the script still fails.  Chunk sizes halve until
single-op deletions stop making progress.

The failure predicate is caller-supplied, so the same shrinker serves
the differential oracle ("some divergence remains"), checked-mode
crashes ("the audit still raises"), or any ad-hoc property a test
cares about.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

from repro.verify.replay import MutatorScript, normalize_ops

__all__ = ["shrink_script"]

#: Returns True when the (still failing) script reproduces the bug.
FailurePredicate = Callable[[MutatorScript], bool]


def shrink_script(
    script: MutatorScript,
    fails: FailurePredicate,
    *,
    max_attempts: int = 800,
) -> MutatorScript:
    """Minimize a failing script while preserving the failure.

    Args:
        script: the original failing script.
        fails: predicate that replays a candidate and reports whether
            the bug still reproduces.  It must be deterministic.
        max_attempts: budget of candidate evaluations; shrinking stops
            (returning the best script so far) when it runs out.

    Returns:
        A 1-minimal-ish script: no single remaining op can be deleted
        without losing the failure (unless the attempt budget ran out
        first).

    Raises:
        ValueError: if ``script`` does not fail to begin with.
    """
    current = replace(script, ops=normalize_ops(script.ops))
    if not fails(current):
        if fails(script):
            # Normalization alone lost the failure; shrink the raw ops.
            current = script
        else:
            raise ValueError(
                "shrink_script needs a failing script to start from"
            )

    attempts = 0
    chunk = max(1, len(current.ops) // 2)
    while chunk >= 1:
        start = 0
        progressed = False
        while start < len(current.ops):
            if attempts >= max_attempts:
                return _annotate(current, script)
            candidate_ops = normalize_ops(
                current.ops[:start] + current.ops[start + chunk :]
            )
            attempts += 1
            if len(candidate_ops) < len(current.ops) and fails(
                replace(current, ops=candidate_ops)
            ):
                current = replace(current, ops=candidate_ops)
                progressed = True
                # Deletion shifted everything left; retry at the same
                # position rather than skipping ops.
                continue
            start += chunk
        if chunk == 1:
            if not progressed:
                break
        else:
            chunk = max(1, chunk // 2)
    return _annotate(current, script)


def _annotate(current: MutatorScript, original: MutatorScript) -> MutatorScript:
    note = f"shrunk from {len(original.ops)} ops"
    if original.note:
        note = f"{note}; {original.note}"
    return replace(current, note=note)
