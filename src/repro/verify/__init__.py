"""Verification subsystem: heap-invariant audits and differential testing.

Two independent oracles over the collectors in :mod:`repro.gc`:

* :mod:`repro.verify.audit` — structural invariants checked against a
  single collector ("checked mode", installable as a post-collection
  hook);
* :mod:`repro.verify.differential` — replay one deterministic mutator
  script (:mod:`repro.verify.replay`) under every registered collector
  and require identical live graphs at every checkpoint, with
  :mod:`repro.verify.shrink` minimizing any counterexample.
  :mod:`repro.verify.budget` specializes the same machinery into the
  incremental collector's interruption-equivalence suite,
  :mod:`repro.verify.concurrent` into the concurrent collector's
  off-thread-marking equivalence suite, and
  :mod:`repro.verify.resume` into the snapshot subsystem's
  resume-equivalence suite (restore at every allocation safepoint).

The CLI front end is ``repro-gc verify``.
"""

from repro.verify.audit import (
    AuditError,
    AuditReport,
    assert_heap_invariants,
    audit_collector,
    disable_checked_mode,
    enable_checked_mode,
)
from repro.verify.budget import (
    DEFAULT_BUDGETS,
    budget_label,
    run_budget_differential,
    run_budget_differential_all_backends,
)
from repro.verify.concurrent import (
    CONCURRENT_LABELS,
    run_concurrent_differential,
    run_concurrent_differential_all_backends,
)
from repro.verify.differential import (
    DEFAULT_COLLECTORS,
    VERIFY_GEOMETRY,
    DifferentialReport,
    Divergence,
    run_differential,
)
from repro.verify.replay import (
    Checkpoint,
    MutatorScript,
    ReplayCrash,
    ReplayError,
    ReplayResult,
    generate_script,
    normalize_ops,
    replay,
)
from repro.verify.resume import (
    resume_label,
    run_resume_differential,
    run_resume_differential_all_backends,
)
from repro.verify.shrink import shrink_script

__all__ = [
    "AuditError",
    "AuditReport",
    "CONCURRENT_LABELS",
    "Checkpoint",
    "DEFAULT_BUDGETS",
    "DEFAULT_COLLECTORS",
    "DifferentialReport",
    "Divergence",
    "MutatorScript",
    "ReplayCrash",
    "ReplayError",
    "ReplayResult",
    "VERIFY_GEOMETRY",
    "budget_label",
    "run_budget_differential",
    "run_budget_differential_all_backends",
    "run_concurrent_differential",
    "run_concurrent_differential_all_backends",
    "assert_heap_invariants",
    "audit_collector",
    "disable_checked_mode",
    "enable_checked_mode",
    "generate_script",
    "normalize_ops",
    "replay",
    "resume_label",
    "run_differential",
    "run_resume_differential",
    "run_resume_differential_all_backends",
    "shrink_script",
]
