"""The interruption-equivalence oracle for incremental collection.

The incremental collector's correctness claim is *budget-invariance*:
because every cycle snapshots its obligation at open (roots grayed
eagerly, the SATB barrier graying every overwritten referent), the set
of objects a cycle marks — and therefore every
:class:`~repro.gc.stats.GcStats` counter, every checkpointed live
graph, and the final survivor set — is independent of how the marking
is sliced.  Only the pause *log* may differ between budgets, which is
the collector's entire purpose.

:func:`run_budget_differential` turns that claim into a differential
test.  One script is replayed five ways — under mark-sweep (the
reference) and under the incremental collector at every budget in
:data:`DEFAULT_BUDGETS` — after appending two quiescing ``collect``
ops:

* the first closes any cycle the script left open (sweeping to that
  cycle's snapshot, so SATB floating garbage may survive it);
* the second runs from the quiescent heap and is therefore *precise* —
  after it, the incremental heap holds exactly the reachable objects,
  same as mark-sweep.

The oracle then requires, for every budget:

1. checkpointed live graphs and clocks identical to mark-sweep's
   (the existing differential comparison, at every ``check`` op);
2. GcStats and checkpoints identical *across budgets* (strict
   interruption equivalence — budget 1 does exactly the work of
   budget infinity, just in more pieces);
3. the final resident object set identical across budgets *and* equal
   to mark-sweep's (survivor-set equivalence, stronger than graph
   equality: it also proves no floating garbage outlives the
   quiescing collections).

Failures shrink with the standard ddmin shrinker — the predicate is
just "this report is not ok".
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping, Sequence

from repro.gc.collector import Collector
from repro.gc.registry import GcGeometry, collector_factory
from repro.heap.backend import HEAP_BACKENDS
from repro.verify.differential import (
    VERIFY_GEOMETRY,
    DifferentialReport,
    Divergence,
    _compare,
)
from repro.verify.replay import (
    MutatorScript,
    ReplayCrash,
    ReplayResult,
    replay,
)

__all__ = [
    "DEFAULT_BUDGETS",
    "budget_label",
    "run_budget_differential",
    "run_budget_differential_all_backends",
]

#: Slice budgets the suite sweeps: pathological (1 word per slice),
#: small prime (maximally misaligned with object sizes), the default,
#: and unbounded (degenerate stop-the-world, the sanity anchor).
DEFAULT_BUDGETS: tuple[int | None, ...] = (1, 7, 64, None)

#: The reference collector; its replay defines the expected graphs.
_REFERENCE = "mark-sweep"


def budget_label(budget: int | None) -> str:
    """The result-map key for one budget's replay."""
    return f"incremental@b={'inf' if budget is None else budget}"


def _quiesce(script: MutatorScript) -> MutatorScript:
    """The script plus the two cycle-closing collections (see module
    docstring); the replay's implicit final checkpoint then observes a
    precise heap under every collector."""
    return replace(
        script,
        ops=script.ops + (("collect",), ("collect",)),
        note=(script.note + "; " if script.note else "") + "quiesced",
    )


def run_budget_differential(
    script: MutatorScript,
    *,
    budgets: Sequence[int | None] = DEFAULT_BUDGETS,
    backend: str | None = None,
    geometry: GcGeometry | None = None,
    checked: bool = True,
) -> DifferentialReport:
    """Replay ``script`` under mark-sweep and every incremental budget.

    Args:
        script: a valid mutator script (quiescing collects are
            appended internally; pass the raw script).
        budgets: slice budgets to sweep; ``None`` means unbounded.
        backend: heap backend for every replay (None = the session
            default); run once per backend for full coverage.
        geometry: heap geometry (defaults to the verify geometry).
        checked: audit heap invariants after every collection and
            every slice.
    """
    if not budgets:
        raise ValueError("need at least one slice budget")
    geometry = geometry if geometry is not None else VERIFY_GEOMETRY
    quiesced = _quiesce(script)

    collectors: dict[str, Collector] = {}

    def capturing(label: str, inner):
        def build(heap, roots) -> Collector:
            built = inner(heap, roots)
            collectors[label] = built
            return built

        return build

    results: dict[str, ReplayResult | None] = {}
    divergences: list[Divergence] = []

    def run(label: str, factory) -> ReplayResult | None:
        try:
            result = replay(
                quiesced,
                capturing(label, factory),
                checked=checked,
                name=label,
                backend=backend,
            )
        except ReplayCrash as crash:
            results[label] = None
            divergences.append(
                Divergence(
                    kind="crash",
                    collector=label,
                    reference=_REFERENCE,
                    checkpoint_index=None,
                    op_index=crash.op_index,
                    detail=str(crash),
                )
            )
            return None
        results[label] = result
        return result

    reference = run(_REFERENCE, collector_factory(_REFERENCE, geometry))
    replays: dict[str, ReplayResult] = {}
    for budget in budgets:
        label = budget_label(budget)
        result = run(
            label,
            collector_factory(
                "incremental", replace(geometry, slice_budget=budget)
            ),
        )
        if result is not None:
            replays[label] = result

    # 1. Graph equivalence with mark-sweep, at every checkpoint.
    if reference is not None:
        for label, result in replays.items():
            divergence = _compare(reference, result, _REFERENCE, label)
            if divergence is not None:
                divergences.append(divergence)

    # 2. Strict interruption equivalence across budgets: identical
    #    GcStats and checkpoints (pauses excluded — slicing exists to
    #    change them).
    if replays:
        base_label = next(iter(replays))
        base = replays[base_label]
        for label, result in replays.items():
            if label == base_label:
                continue
            if result.stats != base.stats:
                base_stats = dict(base.stats)
                diffs = [
                    f"{key}: {value} != {base_stats[key]}"
                    for key, value in result.stats
                    if base_stats.get(key) != value
                ]
                divergences.append(
                    Divergence(
                        kind="budget-stats",
                        collector=label,
                        reference=base_label,
                        checkpoint_index=None,
                        op_index=None,
                        detail="; ".join(diffs) or "stat key sets differ",
                    )
                )
            divergence = _compare(base, result, base_label, label)
            if divergence is not None:
                divergences.append(divergence)

    # 3. Survivor-set equivalence: after the quiescing collections the
    #    resident set must match across every run, reference included.
    survivors = {
        label: tuple(sorted(collectors[label].space.object_ids()))
        for label in results
        if results[label] is not None
    }
    if _REFERENCE in survivors:
        expected = survivors[_REFERENCE]
        for label, resident in survivors.items():
            if label == _REFERENCE or resident == expected:
                continue
            extra = sorted(set(resident) - set(expected))
            missing = sorted(set(expected) - set(resident))
            parts = [
                f"{len(resident)} resident objects vs "
                f"{_REFERENCE}'s {len(expected)}"
            ]
            if extra:
                parts.append(f"{label} alone retains ids {extra[:5]}")
            if missing:
                parts.append(f"{label} is missing ids {missing[:5]}")
            divergences.append(
                Divergence(
                    kind="survivor-set",
                    collector=label,
                    reference=_REFERENCE,
                    checkpoint_index=None,
                    op_index=None,
                    detail="; ".join(parts),
                )
            )

    return DifferentialReport(
        script=quiesced,
        results=results,
        divergences=tuple(divergences),
    )


def run_budget_differential_all_backends(
    script: MutatorScript,
    *,
    budgets: Sequence[int | None] = DEFAULT_BUDGETS,
    backends: Sequence[str] = HEAP_BACKENDS,
    geometry: GcGeometry | None = None,
    checked: bool = True,
) -> Mapping[str, DifferentialReport]:
    """:func:`run_budget_differential` once per heap backend."""
    return {
        backend: run_budget_differential(
            script,
            budgets=budgets,
            backend=backend,
            geometry=geometry,
            checked=checked,
        )
        for backend in backends
    }
