"""The concurrent-equivalence oracle for off-thread marking.

The concurrent collector's correctness claim extends the incremental
collector's budget-invariance one step further: moving the *entire*
mark phase into a worker process — marking against a snapshot while
the mutator keeps allocating — must not change a single observable
byte.  The argument is the same epoch semantics: the marker computes
exactly the set reachable at cycle open, SATB reconciliation re-marks
everything the mutator's deletions could have hidden, and allocate-
black covers everything born since, so the survivor set (and with it
every :class:`~repro.gc.stats.GcStats` counter) equals what the
incremental collector computes for the same script at any budget.

:func:`run_concurrent_differential` turns that into a differential
test.  One quiesced script (the two cycle-closing collects of
:mod:`repro.verify.budget`) is replayed four ways:

* ``mark-sweep`` — the reference for graphs and survivor sets;
* ``incremental@b=inf`` — the unbounded-budget incremental collector,
  the equivalence target for GcStats;
* ``concurrent@inline`` — the marker run synchronously at handoff
  (the deterministic reference mode);
* ``concurrent@pool`` — the marker in a real worker process.

The oracle requires checkpointed graphs/clocks identical to
mark-sweep's, GcStats identical between the concurrent runs and the
incremental one (``concurrent-stats`` divergences), the inline and
pool runs identical in *everything including the pause log*
(``marker-mode`` divergences — process placement must be invisible),
and survivor sets equal to mark-sweep's.  Failures shrink with the
standard ddmin shrinker.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.gc.collector import Collector
from repro.gc.registry import GcGeometry, collector_factory
from repro.heap.backend import HEAP_BACKENDS
from repro.verify.budget import _quiesce
from repro.verify.differential import (
    VERIFY_GEOMETRY,
    DifferentialReport,
    Divergence,
    _compare,
)
from repro.verify.replay import (
    MutatorScript,
    ReplayCrash,
    ReplayResult,
    replay,
)

__all__ = [
    "CONCURRENT_LABELS",
    "run_concurrent_differential",
    "run_concurrent_differential_all_backends",
]

#: The reference collector; its replay defines the expected graphs.
_REFERENCE = "mark-sweep"
_INCREMENTAL = "incremental@b=inf"
_INLINE = "concurrent@inline"
_POOL = "concurrent@pool"

#: Every label the suite replays, in run order.
CONCURRENT_LABELS: tuple[str, ...] = (_REFERENCE, _INCREMENTAL, _INLINE, _POOL)


def run_concurrent_differential(
    script: MutatorScript,
    *,
    backend: str | None = None,
    geometry: GcGeometry | None = None,
    checked: bool = True,
    pool_workers: int = 1,
) -> DifferentialReport:
    """Replay ``script`` under mark-sweep, incremental(∞), and the
    concurrent collector in both marker modes.

    Args:
        script: a valid mutator script (quiescing collects are
            appended internally; pass the raw script).
        backend: heap backend for every replay (None = the session
            default); run once per backend for full coverage.
        geometry: heap geometry (defaults to the verify geometry).
        checked: audit heap invariants after every collection,
            including the mid-cycle concurrent-wavefront checks.
        pool_workers: marker workers for the pool-mode run; 0 skips
            the pool replay (inline-only, for constrained hosts).
    """
    geometry = geometry if geometry is not None else VERIFY_GEOMETRY
    quiesced = _quiesce(script)

    collectors: dict[str, Collector] = {}

    def capturing(label: str, inner):
        def build(heap, roots) -> Collector:
            built = inner(heap, roots)
            collectors[label] = built
            return built

        return build

    results: dict[str, ReplayResult | None] = {}
    divergences: list[Divergence] = []

    def run(label: str, factory) -> ReplayResult | None:
        try:
            result = replay(
                quiesced,
                capturing(label, factory),
                checked=checked,
                name=label,
                backend=backend,
            )
        except ReplayCrash as crash:
            results[label] = None
            divergences.append(
                Divergence(
                    kind="crash",
                    collector=label,
                    reference=_REFERENCE,
                    checkpoint_index=None,
                    op_index=crash.op_index,
                    detail=str(crash),
                )
            )
            return None
        results[label] = result
        return result

    try:
        reference = run(_REFERENCE, collector_factory(_REFERENCE, geometry))
        incremental = run(
            _INCREMENTAL,
            collector_factory(
                "incremental", replace(geometry, slice_budget=None)
            ),
        )
        inline = run(
            _INLINE,
            collector_factory(
                "concurrent", replace(geometry, marker_workers=0)
            ),
        )
        pool = None
        if pool_workers > 0:
            pool = run(
                _POOL,
                collector_factory(
                    "concurrent",
                    replace(geometry, marker_workers=pool_workers),
                ),
            )

        # 1. Graph equivalence with mark-sweep, at every checkpoint.
        if reference is not None:
            for label in (_INCREMENTAL, _INLINE, _POOL):
                result = results.get(label)
                if result is not None:
                    divergence = _compare(reference, result, _REFERENCE, label)
                    if divergence is not None:
                        divergences.append(divergence)

        # 2. GcStats equivalence with incremental(∞): off-thread marking
        #    does exactly the words of work the in-thread drain does.
        if incremental is not None:
            for label in (_INLINE, _POOL):
                result = results.get(label)
                if result is None or result.stats == incremental.stats:
                    continue
                inc_stats = dict(incremental.stats)
                diffs = [
                    f"{key}: {value} != {inc_stats[key]}"
                    for key, value in result.stats
                    if inc_stats.get(key) != value
                ]
                divergences.append(
                    Divergence(
                        kind="concurrent-stats",
                        collector=label,
                        reference=_INCREMENTAL,
                        checkpoint_index=None,
                        op_index=None,
                        detail="; ".join(diffs) or "stat key sets differ",
                    )
                )

        # 3. Marker-mode invariance: inline vs pool must agree on
        #    everything, pause log included — where the marker ran is
        #    not an observable.
        if inline is not None and pool is not None:
            if pool.stats != inline.stats or pool.pauses != inline.pauses:
                divergences.append(
                    Divergence(
                        kind="marker-mode",
                        collector=_POOL,
                        reference=_INLINE,
                        checkpoint_index=None,
                        op_index=None,
                        detail=(
                            "pool-mode replay diverged from inline marker "
                            "(stats or pause log)"
                        ),
                    )
                )
            divergence = _compare(inline, pool, _INLINE, _POOL)
            if divergence is not None:
                divergences.append(divergence)

        # 4. Survivor-set equivalence after the quiescing collections.
        survivors = {
            label: tuple(sorted(collectors[label].space.object_ids()))
            for label in results
            if results[label] is not None
        }
        if _REFERENCE in survivors:
            expected = survivors[_REFERENCE]
            for label, resident in survivors.items():
                if label == _REFERENCE or resident == expected:
                    continue
                extra = sorted(set(resident) - set(expected))
                missing = sorted(set(expected) - set(resident))
                parts = [
                    f"{len(resident)} resident objects vs "
                    f"{_REFERENCE}'s {len(expected)}"
                ]
                if extra:
                    parts.append(f"{label} alone retains ids {extra[:5]}")
                if missing:
                    parts.append(f"{label} is missing ids {missing[:5]}")
                divergences.append(
                    Divergence(
                        kind="survivor-set",
                        collector=label,
                        reference=_REFERENCE,
                        checkpoint_index=None,
                        op_index=None,
                        detail="; ".join(parts),
                    )
                )
    finally:
        for built in collectors.values():
            close = getattr(built, "close", None)
            if close is not None:
                close()

    return DifferentialReport(
        script=quiesced,
        results=results,
        divergences=tuple(divergences),
    )


def run_concurrent_differential_all_backends(
    script: MutatorScript,
    *,
    backends=HEAP_BACKENDS,
    geometry: GcGeometry | None = None,
    checked: bool = True,
    pool_workers: int = 1,
) -> Mapping[str, DifferentialReport]:
    """:func:`run_concurrent_differential` once per heap backend."""
    return {
        backend: run_concurrent_differential(
            script,
            backend=backend,
            geometry=geometry,
            checked=checked,
            pool_workers=pool_workers,
        )
        for backend in backends
    }
