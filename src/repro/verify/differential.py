"""The differential oracle: one script, five collectors, equal graphs.

All five collectors implement the same abstract service — keep exactly
the reachable objects alive — while disagreeing wildly about *when*
and *where* objects move.  Replaying one deterministic mutator script
(:mod:`repro.verify.replay`) under each of them must therefore produce

* the same number of checkpoints,
* an isomorphic (here: *identical*, since object ids coincide across
  replays) live graph at every checkpoint, and
* the same total allocation volume,

regardless of collector policy.  Any disagreement is a bug in one of
the collectors (or in the write-barrier plumbing), and the earliest
diverging checkpoint localizes it.  :func:`run_differential` performs
the comparison; the first collector in ``kinds`` serves as the
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.gc.registry import COLLECTOR_KINDS, GcGeometry, collector_factory
from repro.heap.backend import HEAP_BACKENDS
from repro.metrics.instrument import metrics_session
from repro.verify.replay import (
    CollectorFactory,
    MutatorScript,
    ReplayCrash,
    ReplayResult,
    replay,
)

__all__ = [
    "DEFAULT_COLLECTORS",
    "VERIFY_GEOMETRY",
    "DifferentialReport",
    "Divergence",
    "run_backend_differential",
    "run_differential",
]

#: Canonical collector names, in comparison order (first = reference).
#: The registry keeps mark-sweep first precisely so differential
#: comparisons use it as the reference implementation.
DEFAULT_COLLECTORS: tuple[str, ...] = COLLECTOR_KINDS

#: Small heap geometry sized for verification scripts: big enough that
#: a script honouring the generator's default live budget never
#: exhausts any collector, small enough that every collector collects
#: naturally (nursery fills, promotions, step renumberings) many times
#: over a few hundred ops.
VERIFY_GEOMETRY = GcGeometry(
    nursery_words=64,
    semispace_words=96,
    step_words=24,
    step_count=8,
)


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between two replays.

    Attributes:
        kind: "crash", "checkpoint-count", "live-graph", or
            "allocation-volume".
        collector: the diverging collector's kind name.
        reference: the reference collector's kind name.
        checkpoint_index: index of the earliest diverging checkpoint
            (None for crashes and count mismatches).
        op_index: script position associated with the divergence.
        detail: human-readable description.
    """

    kind: str
    collector: str
    reference: str
    checkpoint_index: int | None
    op_index: int | None
    detail: str

    def summary(self) -> str:
        where = ""
        if self.op_index is not None:
            where = f" at op {self.op_index}"
        return f"[{self.kind}] {self.collector}{where}: {self.detail}"


@dataclass(frozen=True)
class DifferentialReport:
    """The outcome of one differential run."""

    script: MutatorScript
    results: Mapping[str, ReplayResult | None]
    divergences: tuple[Divergence, ...]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        if self.ok:
            names = ", ".join(self.results)
            noun = "collector" if len(self.results) == 1 else "collectors"
            verb = "replays clean" if len(self.results) == 1 else "agree"
            return (
                f"{len(self.results)} {noun} {verb} over "
                f"{len(self.script.ops)} ops ({names})"
            )
        lines = "\n".join(
            f"  - {divergence.summary()}" for divergence in self.divergences
        )
        return f"{len(self.divergences)} divergence(s):\n{lines}"


def run_differential(
    script: MutatorScript,
    kinds: Sequence[str] = DEFAULT_COLLECTORS,
    *,
    geometry: GcGeometry | None = None,
    factories: Mapping[str, CollectorFactory] | None = None,
    checked: bool = True,
) -> DifferentialReport:
    """Replay ``script`` under every collector and compare checkpoints.

    Args:
        script: a valid mutator script.
        kinds: collector kind names, compared against ``kinds[0]``.
        geometry: heap geometry for the stock factories (defaults to
            :data:`VERIFY_GEOMETRY`).
        factories: overrides mapping a kind name to a custom factory —
            how tests inject deliberately broken collectors.
        checked: audit heap invariants after every collection during
            each replay (crashes surface as "crash" divergences).
    """
    if not kinds:
        raise ValueError("need at least one collector kind")
    geometry = geometry if geometry is not None else VERIFY_GEOMETRY
    factories = dict(factories or {})

    results: dict[str, ReplayResult | None] = {}
    crashes: dict[str, ReplayCrash] = {}
    for kind in kinds:
        factory = factories.get(kind) or collector_factory(kind, geometry)
        try:
            results[kind] = replay(script, factory, checked=checked, name=kind)
        except ReplayCrash as crash:
            results[kind] = None
            crashes[kind] = crash

    reference = kinds[0]
    divergences: list[Divergence] = []
    for kind in kinds:
        crash = crashes.get(kind)
        if crash is not None:
            divergences.append(
                Divergence(
                    kind="crash",
                    collector=kind,
                    reference=reference,
                    checkpoint_index=None,
                    op_index=crash.op_index,
                    detail=str(crash),
                )
            )

    base = results.get(reference)
    if base is not None:
        for kind in kinds[1:]:
            candidate = results.get(kind)
            if candidate is None:
                continue  # already reported as a crash
            divergence = _compare(base, candidate, reference, kind)
            if divergence is not None:
                divergences.append(divergence)

    return DifferentialReport(
        script=script,
        results=results,
        divergences=tuple(divergences),
    )


def run_backend_differential(
    script: MutatorScript,
    kinds: Sequence[str] = DEFAULT_COLLECTORS,
    *,
    backends: Sequence[str] = HEAP_BACKENDS,
    geometry: GcGeometry | None = None,
    factories: Mapping[str, CollectorFactory] | None = None,
    checked: bool = True,
) -> DifferentialReport:
    """Replay ``script`` per collector under every heap backend.

    The object-versus-flat axis is stricter than the cross-collector
    one: two backends running the *same* collector must agree not only
    on the live graph at every checkpoint but on every
    :class:`~repro.gc.stats.GcStats` counter, the full pause log, and
    the complete metrics event stream.  ``backends[0]`` is the
    reference; results are keyed ``"<kind>@<backend>"``.
    """
    if not kinds:
        raise ValueError("need at least one collector kind")
    if len(backends) < 2:
        raise ValueError("need at least two backends to compare")
    geometry = geometry if geometry is not None else VERIFY_GEOMETRY
    factories = dict(factories or {})

    results: dict[str, ReplayResult | None] = {}
    divergences: list[Divergence] = []
    reference_backend = backends[0]
    for kind in kinds:
        factory = factories.get(kind) or collector_factory(kind, geometry)
        replays: dict[str, ReplayResult | None] = {}
        events: dict[str, tuple] = {}
        for backend in backends:
            label = f"{kind}@{backend}"
            try:
                with metrics_session() as session:
                    result = replay(
                        script,
                        factory,
                        checked=checked,
                        name=label,
                        backend=backend,
                    )
            except ReplayCrash as crash:
                replays[backend] = None
                results[label] = None
                divergences.append(
                    Divergence(
                        kind="crash",
                        collector=label,
                        reference=f"{kind}@{reference_backend}",
                        checkpoint_index=None,
                        op_index=crash.op_index,
                        detail=str(crash),
                    )
                )
                continue
            replays[backend] = result
            results[label] = result
            events[backend] = tuple(
                _freeze(record) for record in session.stream.events()
            )

        base = replays.get(reference_backend)
        if base is None:
            continue
        reference = f"{kind}@{reference_backend}"
        for backend in backends[1:]:
            candidate = replays.get(backend)
            if candidate is None:
                continue  # already reported as a crash
            label = f"{kind}@{backend}"
            divergence = _compare(base, candidate, reference, label)
            if divergence is None:
                divergence = _compare_work(
                    base, candidate, reference, label
                )
            if divergence is None:
                divergence = _compare_events(
                    events[reference_backend],
                    events[backend],
                    reference,
                    label,
                )
            if divergence is not None:
                divergences.append(divergence)

    return DifferentialReport(
        script=script,
        results=results,
        divergences=tuple(divergences),
    )


def _freeze(value):
    """Recursively hashable/comparable form of an event record."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _compare_work(
    base: ReplayResult,
    candidate: ReplayResult,
    reference: str,
    kind: str,
) -> Divergence | None:
    """GcStats counters and the pause log must match exactly."""
    if base.stats != candidate.stats:
        diffs = [
            f"{key}: {dict(candidate.stats)[key]} != {value}"
            for key, value in base.stats
            if dict(candidate.stats)[key] != value
        ]
        return Divergence(
            kind="gc-stats",
            collector=kind,
            reference=reference,
            checkpoint_index=None,
            op_index=None,
            detail="; ".join(diffs) or "stat key sets differ",
        )
    if base.pauses != candidate.pauses:
        index = next(
            (
                i
                for i, (a, b) in enumerate(zip(base.pauses, candidate.pauses))
                if a != b
            ),
            min(len(base.pauses), len(candidate.pauses)),
        )
        return Divergence(
            kind="pause-log",
            collector=kind,
            reference=reference,
            checkpoint_index=None,
            op_index=None,
            detail=(
                f"pause logs differ at collection {index} "
                f"({len(base.pauses)} vs {len(candidate.pauses)} pauses)"
            ),
        )
    return None


def _compare_events(
    base_events: tuple,
    candidate_events: tuple,
    reference: str,
    kind: str,
) -> Divergence | None:
    """The two metrics event streams must be identical, record for
    record, in order."""
    if base_events == candidate_events:
        return None
    index = next(
        (
            i
            for i, (a, b) in enumerate(zip(base_events, candidate_events))
            if a != b
        ),
        min(len(base_events), len(candidate_events)),
    )
    return Divergence(
        kind="event-stream",
        collector=kind,
        reference=reference,
        checkpoint_index=None,
        op_index=None,
        detail=(
            f"event streams differ at record {index} "
            f"({len(base_events)} vs {len(candidate_events)} events)"
        ),
    )


def _compare(
    base: ReplayResult,
    candidate: ReplayResult,
    reference: str,
    kind: str,
) -> Divergence | None:
    """The earliest disagreement between two replays, if any."""
    if len(base.checkpoints) != len(candidate.checkpoints):
        return Divergence(
            kind="checkpoint-count",
            collector=kind,
            reference=reference,
            checkpoint_index=None,
            op_index=None,
            detail=(
                f"{kind} took {len(candidate.checkpoints)} checkpoints, "
                f"{reference} took {len(base.checkpoints)}"
            ),
        )
    for index, (expected, actual) in enumerate(
        zip(base.checkpoints, candidate.checkpoints)
    ):
        if expected.graph != actual.graph:
            return Divergence(
                kind="live-graph",
                collector=kind,
                reference=reference,
                checkpoint_index=index,
                op_index=actual.op_index,
                detail=_graph_difference(expected, actual, reference, kind),
            )
        if expected.clock != actual.clock:
            return Divergence(
                kind="allocation-volume",
                collector=kind,
                reference=reference,
                checkpoint_index=index,
                op_index=actual.op_index,
                detail=(
                    f"clock {actual.clock} != {reference}'s "
                    f"{expected.clock} at checkpoint {index}"
                ),
            )
    if base.words_allocated != candidate.words_allocated:
        return Divergence(
            kind="allocation-volume",
            collector=kind,
            reference=reference,
            checkpoint_index=None,
            op_index=None,
            detail=(
                f"allocated {candidate.words_allocated} words, "
                f"{reference} allocated {base.words_allocated}"
            ),
        )
    return None


def _graph_difference(
    expected, actual, reference: str, kind: str
) -> str:
    """Describe the first differing object between two fingerprints."""
    expected_by_id = {entry[0]: entry for entry in expected.graph}
    actual_by_id = {entry[0]: entry for entry in actual.graph}
    only_expected = sorted(set(expected_by_id) - set(actual_by_id))
    only_actual = sorted(set(actual_by_id) - set(expected_by_id))
    parts = [
        f"live graphs differ ({len(expected.graph)} vs "
        f"{len(actual.graph)} objects)"
    ]
    if only_expected:
        parts.append(
            f"{reference} alone reaches ids {only_expected[:5]}"
        )
    if only_actual:
        parts.append(f"{kind} alone reaches ids {only_actual[:5]}")
    if not only_expected and not only_actual:
        for obj_id in sorted(expected_by_id):
            if expected_by_id[obj_id] != actual_by_id[obj_id]:
                parts.append(
                    f"object {obj_id} differs: "
                    f"{expected_by_id[obj_id]} vs {actual_by_id[obj_id]}"
                )
                break
    return "; ".join(parts)
