"""The resume-equivalence oracle for checkpoint/restore.

The snapshot subsystem's correctness claim is *resume equivalence*: a
checkpoint taken at any allocation safepoint captures everything, so
serializing the entire context to JSON, tearing it down, and restoring
into a fresh heap/roots/collector — as a process restart after a crash
would — must leave no observable trace.  Not "roughly the same heap":
the remainder of the run must be byte-identical.

:func:`run_resume_differential` turns that claim into a differential
test.  One quiesced script (the same two cycle-closing ``collect`` ops
the budget oracle appends) is replayed twice per collector kind:

* an *uninterrupted* reference replay;
* a *resumed* replay that, after every ``resume_interval``-th
  allocation safepoint, checkpoints the live context, round-trips the
  document through its canonical JSON wire form (parse + checksum
  verification included — the restore path is the one a cold process
  would take), restores into a brand-new context, and carries on
  there.  Because the safepoints include allocations taken while an
  incremental or concurrent SATB cycle is open, mid-mark-cycle state
  (gray stack, epoch clock, colors, an in-flight marker result) is
  exercised, not just quiescent heaps.

The oracle then requires, for every collector kind on the requested
backend:

1. checkpointed live graphs and clocks identical to the uninterrupted
   replay (``resume-checkpoint``);
2. the full :class:`~repro.gc.stats.GcStats` snapshot identical
   (``resume-stats``) — restores must not add, lose, or re-count work;
3. the pause log identical (``resume-pauses``) — unlike the budget
   oracle, resume equivalence has no licence to change pauses;
4. the final resident object set identical (``resume-survivor``).

Script-level uids map to stable object ids, and ids survive
checkpoint/restore, so the resumed replay needs no translation — the
mutator literally cannot tell it was restarted.  Failures shrink with
the standard ddmin shrinker ("the report is not ok").
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Mapping, Sequence

from repro.gc.registry import (
    COLLECTOR_KINDS,
    GcGeometry,
    collector_factory,
    make_collector,
)
from repro.heap.backend import HEAP_BACKENDS, make_heap
from repro.heap.barrier import WriteBarrier
from repro.heap.roots import RootSet
from repro.resilience.snapshot import checkpoint as take_snapshot
from repro.resilience.snapshot import restore as restore_snapshot
from repro.verify.audit import enable_checked_mode
from repro.verify.budget import _quiesce
from repro.verify.differential import (
    VERIFY_GEOMETRY,
    DifferentialReport,
    Divergence,
    _compare,
)
from repro.verify.replay import (
    Checkpoint,
    MutatorScript,
    ReplayCrash,
    ReplayError,
    ReplayResult,
    replay,
)

__all__ = [
    "resume_label",
    "run_resume_differential",
    "run_resume_differential_all_backends",
]


def resume_label(kind: str) -> str:
    """The result-map key for one kind's resumed replay."""
    return f"{kind}+resume"


def _survivors(heap) -> tuple[int, ...]:
    return tuple(sorted(obj.obj_id for obj in heap.all_objects()))


def _resumed_replay(
    script: MutatorScript,
    kind: str,
    geometry: GcGeometry,
    *,
    backend: str | None,
    checked: bool,
    resume_interval: int,
    label: str,
) -> tuple[ReplayResult, tuple[int, ...], int]:
    """Replay ``script``, checkpoint/restoring the whole context after
    every ``resume_interval``-th allocation safepoint.

    Returns the replay result, the final resident object ids, and the
    number of restores performed.  Mirrors
    :func:`repro.verify.replay.replay` exactly apart from the context
    swaps; any drift between the two loops would itself show up as a
    divergence.
    """
    heap = make_heap(backend)
    roots = RootSet()
    collector = make_collector(kind, heap, roots, geometry)
    if checked:
        enable_checked_mode(collector)
    barrier = WriteBarrier(collector.remember_store)

    uid_to_id: dict[int, int] = {}
    checkpoints: list[Checkpoint] = []
    allocations = 0
    resumes = 0

    def swap_context() -> None:
        """Checkpoint, kill the context, restore from the wire form."""
        nonlocal heap, roots, collector, barrier, resumes
        document = take_snapshot(collector, kind, geometry)
        wire = json.dumps(document, sort_keys=True)
        heap, roots, collector = restore_snapshot(json.loads(wire))
        if checked:
            enable_checked_mode(collector)
        barrier = WriteBarrier(collector.remember_store)
        resumes += 1

    def take_checkpoint(op_index: int) -> None:
        root_ids = list(roots.ids())
        reached = heap.reachable_from(root_ids)
        graph = tuple(
            sorted(
                (obj_id, heap.get(obj_id).size, tuple(heap.get(obj_id).fields))
                for obj_id in reached
            )
        )
        live = sum(entry[1] for entry in graph)
        checkpoints.append(
            Checkpoint(
                op_index=op_index,
                clock=heap.clock,
                live_words=live,
                graph=graph,
            )
        )

    for op_index, op in enumerate(script.ops):
        op_kind = op[0]
        try:
            if op_kind == "alloc":
                _, uid, size, field_count = op
                obj = collector.allocate(size, field_count)
                uid_to_id[uid] = obj.obj_id
                roots.set_global(f"u{uid}", obj)
                allocations += 1
                if allocations % resume_interval == 0:
                    swap_context()
            elif op_kind == "store":
                _, src_uid, slot, dst_uid = op
                src = heap.get(uid_to_id[src_uid])
                if dst_uid is None:
                    barrier.on_store(src, slot, None)
                    heap.write_field(src, slot, None)
                else:
                    target = heap.get(uid_to_id[dst_uid])
                    barrier.on_store(src, slot, target)
                    heap.write_field(src, slot, target)
            elif op_kind == "drop":
                roots.remove_global(f"u{op[1]}")
            elif op_kind == "collect":
                collector.collect()
            elif op_kind == "check":
                take_checkpoint(op_index)
            else:
                raise ReplayError(f"unknown op kind {op_kind!r}")
        except ReplayError:
            raise
        except Exception as exc:
            raise ReplayCrash(op_index, op, exc) from exc

    try:
        take_checkpoint(len(script.ops))
    except Exception as exc:
        raise ReplayCrash(len(script.ops), ("check",), exc) from exc
    result = ReplayResult(
        collector=label,
        checkpoints=tuple(checkpoints),
        words_allocated=collector.stats.words_allocated,
        collections=collector.stats.collections,
        stats=tuple(sorted(collector.stats.snapshot().items())),
        pauses=tuple(collector.stats.pauses),
    )
    return result, _survivors(heap), resumes


def run_resume_differential(
    script: MutatorScript,
    *,
    kinds: Sequence[str] = COLLECTOR_KINDS,
    backend: str | None = None,
    geometry: GcGeometry | None = None,
    checked: bool = True,
    resume_interval: int = 1,
) -> DifferentialReport:
    """Prove checkpoint/restore leaves no observable trace.

    Args:
        script: a valid mutator script (quiescing collects are
            appended internally; pass the raw script).
        kinds: collector kinds to cover (default: all seven).
        backend: heap backend for every replay (None = the session
            default); run once per backend for full coverage.
        geometry: heap geometry (defaults to the verify geometry).
            Concurrent marking is forced inline (``marker_workers=0``)
            so the resumed and uninterrupted replays schedule
            identically.
        checked: audit heap invariants after every collection — on
            both sides of every restore.
        resume_interval: checkpoint/restore after every Nth allocation
            safepoint (1 = every allocation).
    """
    if resume_interval < 1:
        raise ValueError(
            f"resume interval must be positive, got {resume_interval!r}"
        )
    geometry = geometry if geometry is not None else VERIFY_GEOMETRY
    if geometry.marker_workers:
        geometry = replace(geometry, marker_workers=0)
    quiesced = _quiesce(script)

    results: dict[str, ReplayResult | None] = {}
    divergences: list[Divergence] = []

    for kind in kinds:
        label = resume_label(kind)
        reference: ReplayResult | None = None
        reference_survivors: tuple[int, ...] | None = None

        def capturing(inner):
            def build(heap, roots):
                built = inner(heap, roots)
                build.collector = built  # type: ignore[attr-defined]
                return built

            return build

        factory = capturing(collector_factory(kind, geometry))
        try:
            reference = replay(
                quiesced, factory, checked=checked, name=kind, backend=backend
            )
            reference_survivors = _survivors(factory.collector.heap)
        except ReplayCrash as crash:
            results[kind] = None
            divergences.append(
                Divergence(
                    kind="crash",
                    collector=kind,
                    reference=kind,
                    checkpoint_index=None,
                    op_index=crash.op_index,
                    detail=str(crash),
                )
            )
        else:
            results[kind] = reference

        try:
            resumed, resumed_survivors, resumes = _resumed_replay(
                quiesced,
                kind,
                geometry,
                backend=backend,
                checked=checked,
                resume_interval=resume_interval,
                label=label,
            )
        except ReplayCrash as crash:
            results[label] = None
            divergences.append(
                Divergence(
                    kind="crash",
                    collector=label,
                    reference=kind,
                    checkpoint_index=None,
                    op_index=crash.op_index,
                    detail=str(crash),
                )
            )
            continue
        results[label] = resumed
        if reference is None or reference_survivors is None:
            continue

        divergence = _compare(reference, resumed, kind, label)
        if divergence is not None:
            divergences.append(replace(divergence, kind="resume-checkpoint"))
        if resumed.stats != reference.stats:
            reference_stats = dict(reference.stats)
            diffs = [
                f"{key}: {value} != {reference_stats.get(key)}"
                for key, value in resumed.stats
                if reference_stats.get(key) != value
            ]
            divergences.append(
                Divergence(
                    kind="resume-stats",
                    collector=label,
                    reference=kind,
                    checkpoint_index=None,
                    op_index=None,
                    detail=(
                        "; ".join(diffs) or "stat key sets differ"
                    )
                    + f" (after {resumes} restores)",
                )
            )
        if resumed.pauses != reference.pauses:
            divergences.append(
                Divergence(
                    kind="resume-pauses",
                    collector=label,
                    reference=kind,
                    checkpoint_index=None,
                    op_index=None,
                    detail=(
                        f"pause log differs: {len(resumed.pauses)} pauses "
                        f"vs {len(reference.pauses)} uninterrupted "
                        f"(after {resumes} restores)"
                    ),
                )
            )
        if resumed_survivors != reference_survivors:
            extra = sorted(set(resumed_survivors) - set(reference_survivors))
            missing = sorted(set(reference_survivors) - set(resumed_survivors))
            parts = [
                f"{len(resumed_survivors)} resident objects vs "
                f"{len(reference_survivors)} uninterrupted"
            ]
            if extra:
                parts.append(f"resumed run alone retains ids {extra[:5]}")
            if missing:
                parts.append(f"resumed run is missing ids {missing[:5]}")
            divergences.append(
                Divergence(
                    kind="resume-survivor",
                    collector=label,
                    reference=kind,
                    checkpoint_index=None,
                    op_index=None,
                    detail="; ".join(parts),
                )
            )

    return DifferentialReport(
        script=quiesced,
        results=results,
        divergences=tuple(divergences),
    )


def run_resume_differential_all_backends(
    script: MutatorScript,
    *,
    kinds: Sequence[str] = COLLECTOR_KINDS,
    backends: Sequence[str] = HEAP_BACKENDS,
    geometry: GcGeometry | None = None,
    checked: bool = True,
    resume_interval: int = 1,
) -> Mapping[str, DifferentialReport]:
    """:func:`run_resume_differential` once per heap backend."""
    return {
        backend: run_resume_differential(
            script,
            kinds=kinds,
            backend=backend,
            geometry=geometry,
            checked=checked,
            resume_interval=resume_interval,
        )
        for backend in backends
    }
