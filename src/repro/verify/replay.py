"""Deterministic mutator scripts: generate, normalize, replay.

A :class:`MutatorScript` is a flat list of mutator operations over
*script-level* object handles (uids), independent of any collector:

* ``("alloc", uid, size, field_count)`` — allocate and root a new
  object under ``uid``;
* ``("store", src_uid, slot, dst_uid_or_None)`` — write a reference
  slot through the write barrier;
* ``("drop", uid)`` — remove ``uid``'s root (the object may stay
  reachable through other objects' fields);
* ``("collect",)`` — request a full collection;
* ``("check",)`` — take a checkpoint: fingerprint the live graph.

Because the simulated heap assigns object ids sequentially and
collectors never allocate objects of their own, replaying one script
under different collectors produces *identical object ids*, so the
live-graph fingerprints taken at ``check`` ops are directly comparable
across collectors — the foundation of the differential oracle in
:mod:`repro.verify.differential`.

Scripts are *valid* when every ``store`` names uids that are reachable
from the surviving roots at that point (a correct collector can then
never have freed them) and every ``drop`` names a uid that was
allocated.  :func:`generate_script` only emits valid scripts, and
:func:`normalize_ops` repairs an edited op list (as the shrinker's
chunk deletion produces) back to validity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from repro.gc.collector import Collector
from repro.heap.barrier import WriteBarrier
from repro.heap.backend import make_heap
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.verify.audit import enable_checked_mode

__all__ = [
    "Checkpoint",
    "MutatorScript",
    "ReplayCrash",
    "ReplayError",
    "ReplayResult",
    "generate_script",
    "normalize_ops",
    "replay",
]

#: One script operation, e.g. ``("alloc", 3, 2, 1)``.
Op = tuple

#: Builds a collector over a fresh heap and root set.
CollectorFactory = Callable[[SimulatedHeap, RootSet], Collector]


class ReplayError(Exception):
    """A script could not be replayed (malformed or invalid op)."""


class ReplayCrash(ReplayError):
    """An op raised inside the collector or heap during replay.

    In a differential run a crash is itself a verdict: a correct
    collector replays any valid script without raising.
    """

    def __init__(self, op_index: int, op: Op, cause: BaseException) -> None:
        super().__init__(
            f"op {op_index} {op!r} crashed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.op_index = op_index
        self.op = op
        self.cause = cause


@dataclass(frozen=True)
class MutatorScript:
    """A deterministic mutator schedule (see module docstring)."""

    ops: tuple[Op, ...]
    seed: int | None = None
    note: str = ""

    def __len__(self) -> int:
        return len(self.ops)

    def normalized(self) -> "MutatorScript":
        """This script with unreplayable ops removed."""
        return replace(self, ops=normalize_ops(self.ops))

    def to_text(self) -> str:
        """A printable rendering, one op per line."""
        header = f"# seed={self.seed} ops={len(self.ops)}"
        if self.note:
            header += f" note={self.note}"
        lines = [header]
        for index, op in enumerate(self.ops):
            lines.append(f"{index:4d}: {' '.join(str(part) for part in op)}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Checkpoint:
    """The live-graph fingerprint taken at one ``check`` op.

    Attributes:
        op_index: position of the check in the script (``len(ops)``
            for the implicit final checkpoint).
        clock: heap allocation clock at the checkpoint.
        live_words: words reachable from the surviving roots.
        graph: canonical live graph — a sorted tuple of
            ``(obj_id, size, fields)`` triples over reachable objects,
            with reference fields as object ids.
    """

    op_index: int
    clock: int
    live_words: int
    graph: tuple

    def brief(self) -> str:
        return (
            f"op {self.op_index}: clock={self.clock} "
            f"live={self.live_words}w objects={len(self.graph)}"
        )


@dataclass(frozen=True)
class ReplayResult:
    """One collector's replay of one script.

    ``stats`` (the sorted :meth:`~repro.gc.stats.GcStats.snapshot`
    items) and ``pauses`` (the full pause log) let the backend
    differential assert that two heap backends do byte-identical
    *work*, not merely that they keep the same objects alive.
    """

    collector: str
    checkpoints: tuple[Checkpoint, ...]
    words_allocated: int
    collections: int
    stats: tuple[tuple[str, int], ...] = ()
    pauses: tuple = ()


# ----------------------------------------------------------------------
# Script model (shared by the generator and the normalizer)
# ----------------------------------------------------------------------


class _ScriptModel:
    """Collector-independent shadow of a script's object graph.

    Tracks, per uid: field contents and rootedness, and answers exact
    reachability queries so the generator (and the shrinker's
    normalizer) only ever reference uids a correct collector is
    guaranteed to keep alive.
    """

    def __init__(self) -> None:
        self.sizes: dict[int, int] = {}
        self.fields: dict[int, list[int | None]] = {}
        self.rooted: set[int] = set()
        self._reachable: set[int] = set()
        self._dirty = False

    def alloc(self, uid: int, size: int, field_count: int) -> None:
        self.sizes[uid] = size
        self.fields[uid] = [None] * field_count
        self.rooted.add(uid)
        if not self._dirty:
            self._reachable.add(uid)

    def store(self, src: int, slot: int, dst: int | None) -> None:
        old = self.fields[src][slot]
        self.fields[src][slot] = dst
        # Overwriting a reference can only shrink reachability; adding
        # an edge between two already-reachable uids cannot grow it.
        if old is not None and old != dst:
            self._dirty = True

    def drop(self, uid: int) -> None:
        self.rooted.discard(uid)
        self._dirty = True

    def reachable(self) -> set[int]:
        if self._dirty:
            reached: set[int] = set()
            stack = [uid for uid in self.rooted]
            while stack:
                uid = stack.pop()
                if uid in reached:
                    continue
                reached.add(uid)
                for ref in self.fields[uid]:
                    if ref is not None and ref not in reached:
                        stack.append(ref)
            self._reachable = reached
            self._dirty = False
        return self._reachable

    def live_words(self) -> int:
        return sum(self.sizes[uid] for uid in self.reachable())


def normalize_ops(ops: Iterable[Op]) -> tuple[Op, ...]:
    """Drop ops an edited script can no longer replay validly.

    A ``store`` survives only if both ends were allocated by a kept
    ``alloc`` *and* are still reachable at that point (a correct
    collector may legitimately have freed an unreachable object, and
    which collectors have done so by then differs — mutating such an
    object would make replays diverge for uninteresting reasons).  A
    ``drop`` survives only if its uid was allocated and is currently
    rooted.  ``alloc``/``collect``/``check`` always survive.
    """
    model = _ScriptModel()
    kept: list[Op] = []
    for op in ops:
        kind = op[0]
        if kind == "alloc":
            _, uid, size, field_count = op
            model.alloc(uid, size, field_count)
            kept.append(op)
        elif kind == "store":
            _, src, slot, dst = op
            if src not in model.sizes:
                continue
            if dst is not None and dst not in model.sizes:
                continue
            if slot >= len(model.fields[src]):
                continue
            reachable = model.reachable()
            if src not in reachable:
                continue
            if dst is not None and dst not in reachable:
                continue
            model.store(src, slot, dst)
            kept.append(op)
        elif kind == "drop":
            _, uid = op
            if uid not in model.rooted:
                continue
            model.drop(uid)
            kept.append(op)
        elif kind in ("collect", "check"):
            kept.append(op)
        else:
            raise ReplayError(f"unknown op kind {kind!r}")
    return tuple(kept)


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------


def generate_script(
    op_count: int,
    seed: int,
    *,
    max_live_words: int = 40,
    max_object_words: int = 4,
    max_fields: int = 3,
    check_interval: int = 64,
) -> MutatorScript:
    """Generate a deterministic, valid mutator script.

    The mix is allocation-heavy (roughly half the ops) with stores,
    root drops and explicit collections interleaved, and a ``check``
    op every ``check_interval`` ops plus one at the end.  Live storage
    is kept at or below ``max_live_words`` by force-dropping roots
    before an allocation that would exceed it, so the script replays
    without exhausting any reasonably sized heap.
    """
    if op_count < 1:
        raise ValueError(f"op count must be positive, got {op_count!r}")
    if max_live_words < max_object_words:
        raise ValueError(
            f"live budget {max_live_words} cannot fit even one object "
            f"of {max_object_words} words"
        )
    rng = random.Random(seed)
    model = _ScriptModel()
    ops: list[Op] = []
    next_uid = 0

    def emit_alloc() -> None:
        nonlocal next_uid
        size = rng.randint(1, max_object_words)
        # An object's reference slots fit inside its size (model.py's
        # field_count <= size constraint).
        field_count = rng.randint(0, min(size, max_fields))
        # Stay under the live budget: drop roots until the allocation
        # fits (dropping every root always frees everything).
        while model.rooted and model.live_words() + size > max_live_words:
            victim = rng.choice(sorted(model.rooted))
            model.drop(victim)
            ops.append(("drop", victim))
        uid = next_uid
        next_uid += 1
        model.alloc(uid, size, field_count)
        ops.append(("alloc", uid, size, field_count))

    def emit_store() -> bool:
        reachable = sorted(model.reachable())
        sources = [uid for uid in reachable if model.fields[uid]]
        if not sources:
            return False
        src = rng.choice(sources)
        slot = rng.randrange(len(model.fields[src]))
        if rng.random() < 0.15:
            dst: int | None = None
        else:
            dst = rng.choice(reachable)
        model.store(src, slot, dst)
        ops.append(("store", src, slot, dst))
        return True

    def emit_drop() -> bool:
        if not model.rooted:
            return False
        victim = rng.choice(sorted(model.rooted))
        model.drop(victim)
        ops.append(("drop", victim))
        return True

    while len(ops) < op_count:
        if check_interval and len(ops) and len(ops) % check_interval == 0:
            ops.append(("check",))
            continue
        roll = rng.random()
        if roll < 0.50:
            emit_alloc()
        elif roll < 0.78:
            if not emit_store():
                emit_alloc()
        elif roll < 0.98:
            if not emit_drop():
                emit_alloc()
        else:
            # Explicit full collections are rare so that most
            # collections are the natural, allocation-triggered kind
            # (minor/promoting paths included).
            ops.append(("collect",))
    if ops[-1] != ("check",):
        ops.append(("check",))
    return MutatorScript(
        ops=tuple(ops), seed=seed, note=f"generated op_count={op_count}"
    )


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------


def replay(
    script: MutatorScript,
    factory: CollectorFactory,
    *,
    checked: bool = False,
    name: str = "",
    backend: str | None = None,
) -> ReplayResult:
    """Replay a script under a freshly built collector.

    Args:
        script: the script to replay (must be valid; see module doc).
        factory: builds the collector over a fresh heap and root set.
        checked: install the heap auditor as a post-collection hook,
            so every collection is audited as it completes.
        name: label for the result (defaults to the collector's name).
        backend: heap backend to replay on (``"object"``/``"flat"``);
            None resolves the environment/default selection.

    Raises:
        ReplayCrash: an op raised inside the collector or heap —
            including :class:`~repro.verify.audit.AuditError` from
            checked mode.
        ReplayError: the script itself is malformed.
    """
    heap = make_heap(backend)
    roots = RootSet()
    collector = factory(heap, roots)
    if checked:
        enable_checked_mode(collector)
    barrier = WriteBarrier(collector.remember_store)

    uid_to_id: dict[int, int] = {}
    checkpoints: list[Checkpoint] = []

    def take_checkpoint(op_index: int) -> None:
        root_ids = list(roots.ids())
        reached = heap.reachable_from(root_ids)
        graph = tuple(
            sorted(
                (obj_id, heap.get(obj_id).size, tuple(heap.get(obj_id).fields))
                for obj_id in reached
            )
        )
        live = sum(entry[1] for entry in graph)
        checkpoints.append(
            Checkpoint(
                op_index=op_index,
                clock=heap.clock,
                live_words=live,
                graph=graph,
            )
        )

    for op_index, op in enumerate(script.ops):
        kind = op[0]
        try:
            if kind == "alloc":
                _, uid, size, field_count = op
                obj = collector.allocate(size, field_count)
                uid_to_id[uid] = obj.obj_id
                roots.set_global(f"u{uid}", obj)
            elif kind == "store":
                _, src_uid, slot, dst_uid = op
                src = heap.get(_resolve(uid_to_id, src_uid))
                if dst_uid is None:
                    barrier.on_store(src, slot, None)
                    heap.write_field(src, slot, None)
                else:
                    target = heap.get(_resolve(uid_to_id, dst_uid))
                    barrier.on_store(src, slot, target)
                    heap.write_field(src, slot, target)
            elif kind == "drop":
                roots.remove_global(f"u{op[1]}")
            elif kind == "collect":
                collector.collect()
            elif kind == "check":
                take_checkpoint(op_index)
            else:
                raise ReplayError(f"unknown op kind {kind!r}")
        except ReplayError:
            raise
        except Exception as exc:
            raise ReplayCrash(op_index, op, exc) from exc

    # A final fingerprint so even check-free scripts are comparable.
    try:
        take_checkpoint(len(script.ops))
    except Exception as exc:
        raise ReplayCrash(len(script.ops), ("check",), exc) from exc
    return ReplayResult(
        collector=name or collector.name,
        checkpoints=tuple(checkpoints),
        words_allocated=collector.stats.words_allocated,
        collections=collector.stats.collections,
        stats=tuple(sorted(collector.stats.snapshot().items())),
        pauses=tuple(collector.stats.pauses),
    )


def _resolve(uid_to_id: dict[int, int], uid: int) -> int:
    try:
        return uid_to_id[uid]
    except KeyError:
        raise ReplayError(
            f"script references uid {uid} before its alloc"
        ) from None
