"""repro: Generational Garbage Collection and the Radioactive Decay Model.

A reproduction of Clinger & Hansen (PLDI 1997): the radioactive decay
model of object lifetimes, the non-predictive generational collector,
the Section 5 analysis, a word-accurate heap/collector simulator, a
Scheme-ish runtime, the paper's six benchmarks, and drivers that
regenerate every table and figure.

Quick start::

    from repro import RadioactiveDecayModel, relative_overhead
    model = RadioactiveDecayModel(half_life=1024)
    print(model.equilibrium_live_storage())     # Equation 1
    print(relative_overhead(0.25, 3.5).value)   # Corollary 5

See examples/quickstart.py for a collector in motion.
"""

from repro.core import (
    LN2,
    AdaptiveRemsetPolicy,
    FixedFractionPolicy,
    FixedJPolicy,
    HalfEmptyPolicy,
    MarkConsEstimate,
    OverheadPoint,
    RadioactiveDecayModel,
    StepSnapshot,
    equilibrium_live_storage,
    expected_live,
    fixed_point_f,
    half_life_for_live_storage,
    live_fraction,
    mark_cons_ratio,
    nongenerational_mark_cons,
    optimal_generation_fraction,
    overhead_curve,
    relative_overhead,
    stable_equilibrium_holds,
)
from repro.gc import (
    Collector,
    GcStats,
    GenerationalCollector,
    HeapExhausted,
    HybridCollector,
    MarkSweepCollector,
    NonPredictiveCollector,
    StopAndCopyCollector,
)
from repro.heap import (
    HeapObject,
    RememberedSet,
    RootSet,
    SimulatedHeap,
    Space,
    SpaceFull,
    WriteBarrier,
)
from repro.runtime import Machine

__version__ = "1.0.0"

__all__ = [
    "LN2",
    "AdaptiveRemsetPolicy",
    "Collector",
    "FixedFractionPolicy",
    "FixedJPolicy",
    "GcStats",
    "GenerationalCollector",
    "HalfEmptyPolicy",
    "HeapExhausted",
    "HeapObject",
    "HybridCollector",
    "Machine",
    "MarkConsEstimate",
    "MarkSweepCollector",
    "NonPredictiveCollector",
    "OverheadPoint",
    "RadioactiveDecayModel",
    "RememberedSet",
    "RootSet",
    "SimulatedHeap",
    "Space",
    "SpaceFull",
    "StepSnapshot",
    "StopAndCopyCollector",
    "WriteBarrier",
    "equilibrium_live_storage",
    "expected_live",
    "fixed_point_f",
    "half_life_for_live_storage",
    "live_fraction",
    "mark_cons_ratio",
    "nongenerational_mark_cons",
    "optimal_generation_fraction",
    "overhead_curve",
    "relative_overhead",
    "stable_equilibrium_holds",
]
