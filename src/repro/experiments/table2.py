"""Experiment ``table2``: the benchmark inventory (Table 2).

The paper's Table 2 lists the six allocation-intensive benchmarks with
their sizes and one-line descriptions.  The reproduction's analogue
lists our ports with the line counts of the implementing modules —
an inventory, not a performance artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.programs.registry import BENCHMARKS
from repro.trace.render import TextTable

__all__ = ["Table2Result", "render_table2", "run_table2"]

#: Files implementing each benchmark, relative to the package root.
_SOURCES: dict[str, tuple[str, ...]] = {
    "nbody": ("programs/nbody.py",),
    "nucleic2": ("programs/nucleic.py",),
    "lattice": ("programs/lattice.py",),
    "10dynamic": ("programs/dynamic.py",),
    "nboyer": (
        "programs/boyer/__init__.py",
        "programs/boyer/terms.py",
        "programs/boyer/rules.py",
        "programs/boyer/rewriter.py",
    ),
    "sboyer": ("programs/boyer/rewriter.py",),
}


@dataclass(frozen=True)
class Table2Row:
    name: str
    lines_of_code: int
    description: str


@dataclass(frozen=True)
class Table2Result:
    rows: tuple[Table2Row, ...]


def _count_lines(relative: str) -> int:
    path = Path(__file__).resolve().parent.parent / relative
    with open(path, encoding="utf-8") as handle:
        return sum(1 for _ in handle)


def run_table2() -> Table2Result:
    rows = []
    for benchmark in BENCHMARKS:
        total = sum(
            _count_lines(source) for source in _SOURCES[benchmark.name]
        )
        rows.append(
            Table2Row(
                name=benchmark.name,
                lines_of_code=total,
                description=benchmark.description,
            )
        )
    return Table2Result(rows=tuple(rows))


def render_table2(result: Table2Result) -> str:
    table = TextTable(["name", "lines of code", "brief description"])
    for row in result.rows:
        table.add_row(row.name, row.lines_of_code, row.description)
    return (
        "Table 2: six allocation-intensive benchmarks (Python ports)\n"
        + table.to_text()
    )
