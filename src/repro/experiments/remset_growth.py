"""Experiment ``remset``: Section 8.3's remembered-set growth.

The paper warns that non-predictive collection inverts the usual
remembered-set economics: "strict functional programs create
structures whose pointers almost always point from younger to older
objects.  For a conventional generational collector, this implies
that the remembered set is nearly empty.  For a non-predictive
collector, this implies that the remembered set may become very large
unless the garbage collector acts first" — and §8.3 proposes acting
first by reducing ``j`` before promotions that would blow the set up.

This experiment builds exactly such a structure — a long list whose
pairs each point at an older pair — through the hybrid collector, and
measures the steps remembered set:

* under a conventional generational collector (old-to-young entries
  only): essentially empty;
* under the hybrid with an unconstrained ``j``: entries accumulate
  with every promotion into the protected steps;
* under the hybrid with the §8.3 ``max_remset`` valve: growth capped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.runtime.machine import Machine
from repro.runtime.values import Fixnum
from repro.trace.render import TextTable

__all__ = ["RemsetGrowthResult", "render_remset_growth", "run_remset_growth"]


@dataclass(frozen=True)
class RemsetGrowthResult:
    """Peak remembered-set sizes for the list-building workload."""

    total_pairs: int
    conventional_peak: int
    hybrid_unconstrained_peak: int
    hybrid_capped_peak: int
    cap: int


def _build_indexed_data(
    machine: Machine, leaves: int, index_pairs: int
) -> tuple[object, object]:
    """Build old data, then a young index over it.

    Phase 1 allocates ``leaves`` pairs of base data (they age into the
    old steps); phase 2 builds an index list whose every pair's car
    points at one of the old leaves — the younger-to-older pointer
    pattern of strict functional programs.  Each index pair promoted
    into a protected step therefore carries a pointer into the
    collectable steps (situation 5).
    """
    data = None
    leaf_handles = []
    for index in range(leaves):
        data = machine.cons(Fixnum(index), data)
        leaf_handles.append(data)
    index_head = None
    for index in range(index_pairs):
        target = leaf_handles[index % len(leaf_handles)]
        index_head = machine.cons(target, index_head)
    return data, index_head


def run_remset_growth(
    *,
    leaves: int = 2_200,
    index_pairs: int = 1_200,
    nursery_words: int = 512,
    step_count: int = 8,
    step_words: int = 1_024,
    initial_j: int = 3,
    cap: int = 64,
) -> RemsetGrowthResult:
    """Measure remset growth for a younger-to-older pointer workload.

    The geometry is sized so the base data fills the collectable
    steps; the index pairs then promote into the protected steps, each
    carrying a pointer into an older step (situation 5), growing the
    steps remembered set with the index.
    """
    # Conventional generational collector: the same structure needs
    # almost no remembered-set entries (all pointers young-to-old).
    conventional = Machine(
        lambda heap, roots: GenerationalCollector(
            heap, roots, [nursery_words, step_count * step_words]
        )
    )
    kept = _build_indexed_data(conventional, leaves, index_pairs)
    conventional_peak = max(
        remset.peak_size for remset in conventional.collector.remsets
    )
    del kept

    # Hybrid, unconstrained: promotions into the protected steps carry
    # pointers into the collectable steps (situation 5), and the
    # steps remembered set grows with the structure.
    unconstrained = Machine(
        lambda heap, roots: HybridCollector(
            heap,
            roots,
            nursery_words,
            step_count,
            step_words,
            initial_j=initial_j,
        )
    )
    kept = _build_indexed_data(unconstrained, leaves, index_pairs)
    unconstrained_peak = unconstrained.collector.remset_steps.peak_size
    del kept

    # Hybrid with the §8.3 valve: j is reduced before promotions that
    # would push the set past the cap.
    capped = Machine(
        lambda heap, roots: HybridCollector(
            heap,
            roots,
            nursery_words,
            step_count,
            step_words,
            initial_j=initial_j,
            max_remset=cap,
        )
    )
    kept = _build_indexed_data(capped, leaves, index_pairs)
    capped_peak = capped.collector.remset_steps.peak_size
    del kept

    return RemsetGrowthResult(
        total_pairs=leaves + index_pairs,
        conventional_peak=conventional_peak,
        hybrid_unconstrained_peak=unconstrained_peak,
        hybrid_capped_peak=capped_peak,
        cap=cap,
    )


def render_remset_growth(result: RemsetGrowthResult) -> str:
    table = TextTable(["configuration", "peak remset entries"])
    table.add_row("conventional generational", result.conventional_peak)
    table.add_row(
        "hybrid non-predictive (unconstrained j)",
        result.hybrid_unconstrained_peak,
    )
    table.add_row(
        f"hybrid + §8.3 valve (cap {result.cap})", result.hybrid_capped_peak
    )
    return "\n".join(
        [
            "Remembered-set growth for a strict-functional structure",
            f"(young index over old data, {result.total_pairs:,} pairs; "
            "§8.3's worst case)",
            table.to_text(),
        ]
    )
