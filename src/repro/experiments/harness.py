"""Shared infrastructure for the paper-artifact experiments.

The experiments scale the paper's megabyte-sized heaps down to the
simulator (word-accurate, but Python-speed).  One word here plays the
role of 4 bytes there; heap geometry is scaled so that the *ratios*
the paper's results depend on (nursery size to peak live storage,
semispace size to live storage) are preserved.  EXPERIMENTS.md records
the mapping next to each artifact.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.gc.registry import GcGeometry, collector_factory
from repro.gc.stopcopy import StopAndCopyCollector
from repro.programs.registry import Benchmark
from repro.runtime.machine import Machine

__all__ = [
    "GcGeometry",
    "RunOutcome",
    "collector_factory",
    "run_benchmark_under",
]

#: Deep if-trees in the Boyer benchmark need generous Python recursion.
_RECURSION_LIMIT = 200_000


@dataclass(frozen=True)
class RunOutcome:
    """One (benchmark, collector) execution's measurements."""

    benchmark: str
    collector: str
    words_allocated: int
    peak_live_words: int
    semispace_words: int | None
    gc_work: int
    mark_cons: float
    gc_mutator_ratio: float
    collections: int
    minor_collections: int
    result: object


def run_benchmark_under(
    benchmark: Benchmark,
    collector_kind: str,
    *,
    scale: int = 1,
    geometry: GcGeometry | None = None,
) -> RunOutcome:
    """Run one benchmark under one collector and collect measurements."""
    if sys.getrecursionlimit() < _RECURSION_LIMIT:
        sys.setrecursionlimit(_RECURSION_LIMIT)
    machine = Machine(collector_factory(collector_kind, geometry))
    result = benchmark.run(machine, scale)
    # A final full collection gives every collector the same end state
    # and records a final live figure.
    machine.collect()
    stats = machine.stats
    peak = max((pause.live for pause in stats.pauses), default=0)
    semispace = None
    if isinstance(machine.collector, StopAndCopyCollector):
        semispace = machine.collector.peak_semispace_words
    return RunOutcome(
        benchmark=benchmark.name,
        collector=collector_kind,
        words_allocated=stats.words_allocated,
        peak_live_words=peak,
        semispace_words=semispace,
        gc_work=stats.gc_work,
        mark_cons=stats.mark_cons,
        gc_mutator_ratio=stats.gc_mutator_ratio(machine.mutator_work),
        collections=stats.collections,
        minor_collections=stats.minor_collections,
        result=result,
    )
