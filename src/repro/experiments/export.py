"""Serialization of experiment results to plain JSON-able data.

Every experiment driver returns a (frozen) dataclass; downstream users
— plotting scripts, regression dashboards, the EXPERIMENTS.md
refresher — want plain data.  :func:`to_jsonable` converts any
experiment result recursively: dataclasses become dicts (with an
``_type`` tag), tuples become lists, dict keys become strings, and the
handful of non-JSON scalars (infinities, NaN) are stringified.

``python -m repro experiment NAME --json`` emits this form.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

__all__ = ["to_jsonable"]


def to_jsonable(value: Any) -> Any:
    """Convert an experiment result into JSON-serializable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        data: dict[str, Any] = {"_type": type(value).__name__}
        for field in dataclasses.fields(value):
            data[field.name] = to_jsonable(getattr(value, field.name))
        return data
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        converted = [to_jsonable(item) for item in value]
        if isinstance(value, (set, frozenset)):
            converted.sort(key=repr)
        return converted
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if value is None or isinstance(value, (bool, int, str)):
        return value
    # Anything else (heap objects, machines) has no business in a
    # result; represent it readably rather than failing the export.
    return repr(value)
