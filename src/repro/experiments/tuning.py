"""Experiment ``tuning``: the §8.1 j-selection rule, ablated.

DESIGN.md calls out the choice of the tuning parameter ``j`` as the
non-predictive collector's one policy knob.  This experiment runs the
decay workload under several policies at the same heap size:

* ``j = 0`` — nothing protected; the collector degenerates to a
  non-generational collector (mark/cons ≈ 1/(L-1));
* fixed fractions ``g`` — the Section 5 analysis's operating points;
* the paper's ``j = floor(l/2)`` rule (Section 8.1), which needs no
  analysis to set and should land near the good fixed fractions;
* the §8.6 alternative that scans the protected steps instead of
  keeping a remembered set, to show the root-tracing cost the
  remembered set avoids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decay import LN2
from repro.core.policy import (
    FixedFractionPolicy,
    FixedJPolicy,
    HalfEmptyPolicy,
    TuningPolicy,
)
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule
from repro.trace.render import TextTable

__all__ = ["TuningResult", "TuningRow", "render_tuning", "run_tuning"]


@dataclass(frozen=True)
class TuningRow:
    policy: str
    mark_cons: float
    roots_traced: int
    collections: int


@dataclass(frozen=True)
class TuningResult:
    half_life: float
    load_factor: float
    rows: tuple[TuningRow, ...]

    def row(self, policy: str) -> TuningRow:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(f"no tuning row named {policy!r}")


def _run_policy(
    name: str,
    policy: TuningPolicy,
    *,
    half_life: float,
    load_factor: float,
    step_count: int,
    cycles: int,
    seed: int,
    use_remset: bool = True,
    initial_j: int = 0,
) -> TuningRow:
    live = half_life / LN2
    heap_words = int(live * load_factor)
    heap = make_heap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap,
        roots,
        step_count,
        heap_words // step_count,
        policy=policy,
        initial_j=initial_j,
        use_remset=use_remset,
    )
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(half_life, seed=seed)
    )
    mutator.run(cycles * heap_words)
    pauses = collector.stats.pauses
    half = len(pauses) // 2
    work = sum(pause.work for pause in pauses[half:])
    allocated = pauses[-1].clock - pauses[half - 1].clock
    return TuningRow(
        policy=name,
        mark_cons=work / allocated,
        roots_traced=collector.stats.roots_traced,
        collections=collector.stats.collections,
    )


def _policy_task(spec: tuple[str, TuningPolicy, dict]) -> TuningRow:
    """One ablation point; module-level so worker processes can run it."""
    name, policy, kwargs = spec
    return _run_policy(name, policy, **kwargs)


def run_tuning(
    *,
    half_life: float = 2_000.0,
    load_factor: float = 3.5,
    step_count: int = 16,
    cycles: int = 25,
    seed: int = 9,
    jobs: int = 1,
) -> TuningResult:
    """Run the policy ablation.

    The six policy runs are independent (each builds its own heap and
    draws lifetimes from its own seeded stream), so ``jobs > 1`` fans
    them out through :func:`repro.perf.parallel.parallel_map`; rows
    come back in the fixed ablation order either way.
    """
    from repro.perf.parallel import parallel_map

    shared = dict(
        half_life=half_life,
        load_factor=load_factor,
        step_count=step_count,
        cycles=cycles,
        seed=seed,
    )
    specs: list[tuple[str, TuningPolicy, dict]] = [
        ("j=0 (non-generational)", FixedJPolicy(0), shared),
        ("fixed g=1/8", FixedFractionPolicy(0.125), shared),
        ("fixed g=1/4", FixedFractionPolicy(0.25), shared),
        ("fixed g=3/8", FixedFractionPolicy(0.375), shared),
        ("half-empty (paper §8.1)", HalfEmptyPolicy(), shared),
        (
            "half-empty, scan-protected (§8.6 alternative)",
            HalfEmptyPolicy(),
            {**shared, "use_remset": False},
        ),
    ]
    rows = parallel_map(_policy_task, specs, jobs=jobs)
    return TuningResult(
        half_life=half_life, load_factor=load_factor, rows=tuple(rows)
    )


def render_tuning(result: TuningResult) -> str:
    table = TextTable(
        ["policy", "mark/cons", "roots traced", "collections"]
    )
    for row in result.rows:
        table.add_row(
            row.policy, f"{row.mark_cons:.4f}", row.roots_traced, row.collections
        )
    return "\n".join(
        [
            "Tuning-parameter ablation (radioactive decay model)",
            f"h = {result.half_life:,.0f}, L = {result.load_factor}",
            table.to_text(),
        ]
    )
