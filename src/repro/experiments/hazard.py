"""Experiment ``hazard``: Section 9's survival-rate-regime claim.

The paper's closing observation: "uniform survival rates, or rates
that decrease with age, are favorable to non-predictive generational
collection", while rates that *increase* with age (the strong
generational hypothesis) favor the conventional age-based collector.

This experiment sweeps the Weibull lifetime family's shape parameter
``k`` — hazard decreasing with age for k < 1 (strong hypothesis),
constant at k = 1 (radioactive decay), increasing for k > 1
(iterated-process-like) — and runs the conventional generational and
non-predictive collectors on each regime at equal heap sizes.  The
expected picture:

* k > 1: the non-predictive collector's advantage is largest (old
  steps are the ones about to die);
* k = 1: the decay model; non-predictive wins, conventional loses
  (the anti-prediction result);
* k < 1: the conventional collector recovers (young objects really do
  die young) and the non-predictive advantage narrows or inverts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gc.generational import GenerationalCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.synthetic import WeibullSchedule
from repro.trace.render import TextTable

__all__ = ["HazardPoint", "HazardResult", "render_hazard", "run_hazard"]


@dataclass(frozen=True)
class HazardPoint:
    """One Weibull shape's measurements."""

    shape: float
    generational_mark_cons: float
    nonpredictive_mark_cons: float

    @property
    def nonpredictive_advantage(self) -> float:
        """Generational cost divided by non-predictive cost (>1 = np wins)."""
        if self.nonpredictive_mark_cons == 0:
            return float("inf")
        return self.generational_mark_cons / self.nonpredictive_mark_cons


@dataclass(frozen=True)
class HazardResult:
    points: tuple[HazardPoint, ...]
    scale: float
    heap_words: int

    def point(self, shape: float) -> HazardPoint:
        for point in self.points:
            if point.shape == shape:
                return point
        raise KeyError(f"no hazard point for shape {shape!r}")


def _steady_mark_cons(collector) -> float:
    pauses = collector.stats.pauses
    half = len(pauses) // 2
    if half < 1:
        return collector.stats.mark_cons
    work = sum(pause.work for pause in pauses[half:])
    allocated = pauses[-1].clock - pauses[half - 1].clock
    return work / allocated if allocated else 0.0


def run_hazard(
    *,
    shapes: tuple[float, ...] = (0.5, 0.7, 1.0, 1.5, 2.5),
    scale: float = 2_500.0,
    load_factor: float = 3.5,
    step_count: int = 16,
    cycles: int = 20,
    seed: int = 13,
) -> HazardResult:
    """Sweep Weibull shapes under both collectors."""
    import math

    points = []
    for shape in shapes:
        # Mean lifetime of Weibull(scale, k) is scale * Gamma(1 + 1/k);
        # the steady live population equals the mean lifetime, and the
        # heap is sized at load_factor times it.
        mean = scale * math.gamma(1.0 + 1.0 / shape)
        heap_words = int(mean * load_factor)

        heap = make_heap()
        roots = RootSet()
        generational = GenerationalCollector(
            heap,
            roots,
            [heap_words // 4, heap_words - heap_words // 4],
            auto_expand_oldest=False,
        )
        mutator = LifetimeDrivenMutator(
            generational, roots, WeibullSchedule(scale, shape, seed=seed)
        )
        mutator.run(cycles * heap_words)
        gen_cost = _steady_mark_cons(generational)

        heap = make_heap()
        roots = RootSet()
        nonpredictive = NonPredictiveCollector(
            heap, roots, step_count, heap_words // step_count
        )
        mutator = LifetimeDrivenMutator(
            nonpredictive, roots, WeibullSchedule(scale, shape, seed=seed)
        )
        mutator.run(cycles * heap_words)
        np_cost = _steady_mark_cons(nonpredictive)

        points.append(
            HazardPoint(
                shape=shape,
                generational_mark_cons=gen_cost,
                nonpredictive_mark_cons=np_cost,
            )
        )
    return HazardResult(
        points=tuple(points),
        scale=scale,
        heap_words=int(scale * load_factor),
    )


def render_hazard(result: HazardResult) -> str:
    table = TextTable(
        [
            "Weibull shape k",
            "hazard with age",
            "generational",
            "non-predictive",
            "np advantage",
        ]
    )
    for point in result.points:
        regime = (
            "decreasing (strong hyp.)"
            if point.shape < 1.0
            else "constant (decay)"
            if point.shape == 1.0
            else "increasing (iterated)"
        )
        table.add_row(
            point.shape,
            regime,
            f"{point.generational_mark_cons:.3f}",
            f"{point.nonpredictive_mark_cons:.3f}",
            f"{point.nonpredictive_advantage:.2f}x",
        )
    return "\n".join(
        [
            "Survival-rate regimes vs. collector choice (paper Section 9)",
            table.to_text(),
            "",
            "Shapes > 1 (old objects dying) favor the non-predictive",
            "collector most; shapes < 1 (the strong generational",
            "hypothesis) narrow its advantage.",
        ]
    )
