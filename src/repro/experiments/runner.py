"""The experiment registry: every paper artifact, one name each.

``run_experiment(name)`` executes one artifact's driver with default
parameters and returns ``(result, rendered_text)``.  The CLI and the
benchmark harness both go through this registry, so DESIGN.md's
per-experiment index maps one-to-one onto runnable names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.antiprediction import (
    render_antiprediction,
    run_antiprediction,
)
from repro.experiments.equilibrium import render_equilibrium, run_equilibrium
from repro.experiments.figure1 import render_figure1, run_figure1
from repro.experiments.hazard import render_hazard, run_hazard
from repro.experiments.promotion import render_promotion, run_promotion
from repro.experiments.remset_growth import (
    render_remset_growth,
    run_remset_growth,
)
from repro.experiments.storage_profiles import (
    render_profile,
    run_figure2,
    run_figure3,
    run_figure4,
)
from repro.experiments.survival_tables import (
    render_survival,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
)
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3
from repro.experiments.tuning import render_tuning, run_tuning
from repro.experiments.weak_hypothesis import (
    render_weak_hypothesis,
    run_weak_hypothesis,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "experiment_names",
    "run_experiment",
    "run_experiment_instrumented",
    "run_experiments",
]


@dataclass(frozen=True)
class Experiment:
    """One regenerable paper artifact."""

    name: str
    paper_artifact: str
    run: Callable[[], object]
    render: Callable[[object], str]


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "table1",
        "Table 1: live storage in a non-predictive collector",
        run_table1,
        render_table1,
    ),
    Experiment(
        "figure1",
        "Figure 1: relative mark/cons overhead curves",
        run_figure1,
        render_figure1,
    ),
    Experiment(
        "table2", "Table 2: the six benchmarks", run_table2, render_table2
    ),
    Experiment(
        "table3",
        "Table 3: allocation and gc overheads",
        run_table3,
        render_table3,
    ),
    Experiment(
        "figure2",
        "Figure 2: live storage, one dynamic iteration",
        run_figure2,
        render_profile,
    ),
    Experiment(
        "table4",
        "Table 4: survival by age, one dynamic iteration",
        run_table4,
        render_survival,
    ),
    Experiment(
        "table5",
        "Table 5: survival by age, full 10dynamic",
        run_table5,
        render_survival,
    ),
    Experiment(
        "figure3",
        "Figure 3: live storage, nboyer",
        run_figure3,
        render_profile,
    ),
    Experiment(
        "table6",
        "Table 6: survival by age, nboyer",
        run_table6,
        render_survival,
    ),
    Experiment(
        "figure4",
        "Figure 4: live storage, sboyer",
        run_figure4,
        render_profile,
    ),
    Experiment(
        "table7",
        "Table 7: survival by age, sboyer",
        run_table7,
        render_survival,
    ),
    Experiment(
        "equilibrium",
        "Equation 1: decay-model equilibrium",
        run_equilibrium,
        render_equilibrium,
    ),
    Experiment(
        "antiprediction",
        "Section 3: conventional generational loses, non-predictive wins",
        run_antiprediction,
        render_antiprediction,
    ),
    Experiment(
        "tuning",
        "Section 8.1: tuning-parameter ablation",
        run_tuning,
        render_tuning,
    ),
    Experiment(
        "remset",
        "Section 8.3: remembered-set growth and the j valve",
        run_remset_growth,
        render_remset_growth,
    ),
    Experiment(
        "hazard",
        "Section 9: survival-rate regimes vs. collector choice",
        run_hazard,
        render_hazard,
    ),
    Experiment(
        "promotion",
        "Section 9: promotion-policy ablation (tenuring vs. promote-all)",
        run_promotion,
        render_promotion,
    ),
    Experiment(
        "weakhyp",
        "Section 7: the weak-hypothesis regime, where conventional wins",
        run_weak_hypothesis,
        render_weak_hypothesis,
    ),
)


def experiment_names() -> list[str]:
    return [experiment.name for experiment in EXPERIMENTS]


def run_experiment(name: str) -> tuple[object, str]:
    """Run one experiment by name; returns (result, rendered text)."""
    for experiment in EXPERIMENTS:
        if experiment.name == name:
            result = experiment.run()
            return result, experiment.render(result)
    raise KeyError(
        f"unknown experiment {name!r}; available: {experiment_names()}"
    )


def run_experiment_instrumented(name: str):
    """Run one experiment with the metrics plane armed.

    Every collector the experiment constructs self-attaches to a
    process-wide :class:`~repro.metrics.MetricsSession`, so existing
    experiments gain pause histograms, the mark/cons decomposition,
    and the telemetry event stream without any change to their code.
    Returns ``(result, rendered text, session)``.  Instrumentation is
    read-only, so the result is byte-identical to an uninstrumented
    run (the metrics-off invariance tests pin this).
    """
    from repro.metrics import metrics_session

    with metrics_session() as session:
        result, text = run_experiment(name)
    return result, text, session


def run_experiments(
    names=None,
    *,
    jobs=1,
    cache=None,
    timeout=None,
    retries=None,
    journal=None,
    failures=None,
):
    """Regenerate several artifacts, optionally in parallel and cached.

    A thin front door over
    :func:`repro.perf.parallel.run_experiment_records` (imported
    lazily; the perf layer imports this module from its workers).
    Defaults to the full registry in registry order; returns
    :class:`~repro.perf.parallel.ExperimentRecord` objects, which carry
    the rendered text and the JSON-able payload rather than live result
    objects — see that module for why.  The resilience knobs
    (``timeout``, ``retries``, ``journal``, ``failures``) pass through
    to the hardened engine untouched; a quarantined experiment's name
    is absent from the returned records and described in ``failures``.
    """
    from repro.perf.parallel import run_experiment_records

    if names is None:
        names = experiment_names()
    unknown = set(names) - set(experiment_names())
    if unknown:
        raise KeyError(
            f"unknown experiments {sorted(unknown)}; "
            f"available: {experiment_names()}"
        )
    return run_experiment_records(
        list(names),
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        retries=retries,
        journal=journal,
        failures=failures,
    )
