"""Reproduction self-check: every paper claim, verified in one run.

``python -m repro validate`` runs a scaled-down version of each
experiment and checks the paper's shape claims programmatically — the
same assertions the benchmark suite makes, packaged as a quick
(~1 minute) smoke test a user can run right after installing.

Each check returns a :class:`CheckResult`; the command exits non-zero
if any check fails, so this doubles as a CI gate for the reproduction
itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import analysis
from repro.experiments.antiprediction import run_antiprediction
from repro.experiments.equilibrium import run_equilibrium
from repro.experiments.figure1 import simulate_relative_overhead
from repro.experiments.remset_growth import run_remset_growth
from repro.experiments.table1 import run_table1

__all__ = ["CheckResult", "run_validation", "VALIDATIONS"]


@dataclass(frozen=True)
class CheckResult:
    """One validated claim."""

    name: str
    passed: bool
    detail: str


def _check_table1() -> CheckResult:
    result = run_table1()
    deviation = result.max_deviation()
    passed = deviation <= 2 and abs(result.mark_cons - 0.2) < 0.01
    return CheckResult(
        name="Table 1: idealized step table, mark/cons 0.2",
        passed=passed,
        detail=(
            f"max deviation {deviation} words, "
            f"mark/cons {result.mark_cons:.3f}"
        ),
    )


def _check_equation1() -> CheckResult:
    result = run_equilibrium(
        half_life=800.0, half_lives_to_run=16, samples=6
    )
    passed = result.relative_error < 0.08
    return CheckResult(
        name="Equation 1: equilibrium live storage = h/ln2",
        passed=passed,
        detail=(
            f"predicted {result.predicted_live:.0f}, measured "
            f"{result.measured_live_mean:.0f} "
            f"({100 * result.relative_error:.1f}% error)"
        ),
    )


def _check_theorem4() -> CheckResult:
    point = simulate_relative_overhead(
        0.25, 3.5, half_life=1_000.0, cycles=15
    )
    passed = point.exact and point.relative_error < 0.10
    return CheckResult(
        name="Theorem 4/Corollary 5: simulation matches the closed form",
        passed=passed,
        detail=(
            f"theory {point.predicted:.3f}, simulated {point.simulated:.3f} "
            f"({100 * point.relative_error:.1f}% off)"
        ),
    )


def _check_headline() -> CheckResult:
    # The paper's main result, stated analytically: for every tested
    # load there is a g with relative overhead below 1.
    passed = all(
        analysis.optimal_generation_fraction(load).relative_overhead < 1.0
        for load in (1.5, 2.0, 3.5, 8.0)
    )
    return CheckResult(
        name="Headline: non-predictive beats non-generational at every L",
        passed=passed,
        detail="optimal g overhead < 1 for L in {1.5, 2, 3.5, 8}",
    )


def _check_antiprediction() -> CheckResult:
    result = run_antiprediction(half_life=800.0, cycles=12)
    passed = result.conventional_loses and result.nonpredictive_wins
    return CheckResult(
        name="Section 3: conventional loses, non-predictive wins, on decay",
        passed=passed,
        detail=(
            f"generational {result.mark_cons['generational']:.3f} vs "
            f"mark/sweep {result.mark_cons['mark-sweep']:.3f} vs "
            f"non-predictive {result.mark_cons['non-predictive']:.3f}"
        ),
    )


def _check_differential() -> CheckResult:
    from repro.verify import generate_script, run_differential

    script = generate_script(600, 3, max_live_words=60)
    report = run_differential(script)
    passed = report.ok
    if passed:
        detail = (
            f"{len(report.results)} collectors agree over "
            f"{len(script.ops)} ops (checked mode)"
        )
    else:
        detail = report.divergences[0].summary()
    return CheckResult(
        name="Differential oracle: five collectors, identical live graphs",
        passed=passed,
        detail=detail,
    )


def _check_remset() -> CheckResult:
    result = run_remset_growth()
    passed = (
        result.conventional_peak < 10
        and result.hybrid_unconstrained_peak > 300
        and result.hybrid_capped_peak <= result.cap
    )
    return CheckResult(
        name="Section 8.3: remset growth and the j valve",
        passed=passed,
        detail=(
            f"conventional {result.conventional_peak}, unconstrained "
            f"{result.hybrid_unconstrained_peak}, capped "
            f"{result.hybrid_capped_peak}"
        ),
    )


#: The validation battery, in presentation order.
VALIDATIONS: tuple[Callable[[], CheckResult], ...] = (
    _check_headline,
    _check_equation1,
    _check_table1,
    _check_theorem4,
    _check_antiprediction,
    _check_remset,
    _check_differential,
)


def run_validation() -> list[CheckResult]:
    """Run every check; failures are reported, never raised."""
    results = []
    for check in VALIDATIONS:
        try:
            results.append(check())
        except Exception as error:  # a crash is a failed check
            results.append(
                CheckResult(
                    name=check.__name__,
                    passed=False,
                    detail=f"crashed: {error!r}",
                )
            )
    return results
