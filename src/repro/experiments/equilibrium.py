"""Experiment ``equilibrium``: Equation 1 and the memorylessness claim.

Section 2 derives that the radioactive decay model approaches an
equilibrium of ``n = 1/(1-r) ≈ h / ln 2`` live objects after several
half-lives.  This experiment runs the decay workload and compares the
measured live population against the prediction, and also verifies
the model's defining property empirically: the measured survival rate
of a cohort over one half-life is one half *regardless of the
cohort's age*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decay import RadioactiveDecayModel, equilibrium_live_storage
from repro.gc.marksweep import MarkSweepCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule
from repro.trace.render import TextTable

__all__ = ["EquilibriumResult", "render_equilibrium", "run_equilibrium"]


@dataclass(frozen=True)
class EquilibriumResult:
    """Measured equilibrium versus Equation 1."""

    half_life: float
    predicted_live: float
    measured_live_mean: float
    measured_live_samples: tuple[int, ...]
    #: Survival over one half-life for cohorts of increasing age
    #: (fractions; memorylessness says they are all ~0.5).
    cohort_survival: tuple[float, ...]

    @property
    def relative_error(self) -> float:
        return abs(self.measured_live_mean - self.predicted_live) / (
            self.predicted_live
        )


def run_equilibrium(
    *,
    half_life: float = 2_000.0,
    half_lives_to_run: int = 24,
    samples: int = 12,
    seed: int = 11,
) -> EquilibriumResult:
    """Measure the decay workload's equilibrium live population."""
    model = RadioactiveDecayModel(half_life)
    heap = make_heap()
    roots = RootSet()
    # Plenty of headroom: the collector must not perturb the mutator.
    collector = MarkSweepCollector(
        heap, roots, int(10 * model.equilibrium_live_storage())
    )
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(half_life, seed=seed)
    )

    warmup = int(half_life * half_lives_to_run / 2)
    mutator.run(warmup)
    live_samples = []
    sample_gap = int(half_life * half_lives_to_run / 2 / samples)
    for _ in range(samples):
        mutator.run(sample_gap)
        live_samples.append(mutator.live_objects)
    mean = sum(live_samples) / len(live_samples)

    # Memorylessness: track one cohort's survival across several
    # consecutive half-lives; each ratio should be ~0.5 regardless of
    # the cohort's age.
    h = int(half_life)
    cohort = set(mutator.held_ids())
    survival = []
    for _ in range(5):
        mutator.run(h)
        still_here = cohort & set(mutator.held_ids())
        survival.append(len(still_here) / max(1, len(cohort)))
        cohort = still_here
        if len(cohort) < 32:
            break
    return EquilibriumResult(
        half_life=half_life,
        predicted_live=equilibrium_live_storage(half_life),
        measured_live_mean=mean,
        measured_live_samples=tuple(live_samples),
        cohort_survival=tuple(survival),
    )


def render_equilibrium(result: EquilibriumResult) -> str:
    table = TextTable(["cohort age (half-lives)", "survival over next h"])
    for age, rate in enumerate(result.cohort_survival):
        table.add_row(age, f"{rate:.3f}")
    return "\n".join(
        [
            "Equation 1 equilibrium check (radioactive decay model)",
            f"half-life h = {result.half_life:,.0f} words",
            f"predicted live storage n = h/ln2 = "
            f"{result.predicted_live:,.1f}",
            f"measured mean live storage  = {result.measured_live_mean:,.1f}"
            f"  (relative error {100 * result.relative_error:.2f}%)",
            "",
            "memorylessness: survival over one half-life by cohort age",
            "(the model predicts 0.500 at every age)",
            table.to_text(),
        ]
    )
