"""Experiment ``figure1``: relative mark/cons overhead curves (Figure 1).

Figure 1 plots, for the radioactive decay model, the mark/cons
overhead of the non-predictive collector divided by that of a
non-generational collector, as a function of the young-generation
fraction ``g`` for several inverse load factors ``L``.  Thin lines are
the exact Theorem 4 / Corollary 5 closed form (valid where the stable
equilibrium hypothesis holds); thick lines are Equation 4 fixed-point
lower bounds.

This experiment regenerates the curves from the closed forms and —
because closed forms can silently diverge from the system they claim
to describe — validates a sample of points against a discrete-event
simulation of the actual collector under the actual decay workload.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import analysis
from repro.core.decay import LN2
from repro.core.policy import FixedFractionPolicy
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule
from repro.trace.render import TextTable, render_series

__all__ = [
    "DEFAULT_LOADS",
    "Figure1Result",
    "SimulationPoint",
    "render_figure1",
    "run_figure1",
    "simulate_relative_overhead",
]

#: Inverse load factors for the curves (the paper sweeps L over a
#: similar small set; the exact values are not recoverable from the
#: grayscale figure, so representative light-to-heavy loads are used).
DEFAULT_LOADS: tuple[float, ...] = (1.5, 2.0, 3.5, 5.0, 8.0)


@dataclass(frozen=True)
class SimulationPoint:
    """One simulation cross-check of the analysis."""

    g: float
    load: float
    simulated: float
    predicted: float
    exact: bool

    @property
    def relative_error(self) -> float:
        if self.predicted == 0:
            return 0.0
        return abs(self.simulated - self.predicted) / self.predicted


@dataclass(frozen=True)
class Figure1Result:
    """The figure's curves plus the simulation validation points."""

    curves: dict[float, list[analysis.OverheadPoint]]
    simulation: list[SimulationPoint]

    def max_simulation_error(self) -> float:
        return max(
            (point.relative_error for point in self.simulation), default=0.0
        )


def simulate_relative_overhead(
    g: float,
    load: float,
    *,
    half_life: float = 2_000.0,
    step_count: int = 16,
    cycles: int = 25,
    seed: int = 42,
) -> SimulationPoint:
    """Measure the relative overhead by running the actual collector.

    The decay workload at half-life ``h`` is run through a
    non-predictive collector with ``k`` steps sized for inverse load
    factor ``L`` and a fixed generation fraction ``g``; the
    steady-state mark/cons ratio over the second half of the run is
    divided by the analytic non-generational ratio ``1/(L-1)``.
    """
    live = half_life / LN2
    heap_words = int(live * load)
    step_words = heap_words // step_count
    heap = make_heap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap,
        roots,
        step_count,
        step_words,
        policy=FixedFractionPolicy(g),
        initial_j=max(0, min(round(g * step_count), step_count // 2)),
    )
    mutator = LifetimeDrivenMutator(
        collector, roots, DecaySchedule(half_life, seed=seed)
    )
    mutator.run(cycles * heap_words)
    pauses = collector.stats.pauses
    half = len(pauses) // 2
    if half < 1:
        raise RuntimeError(
            "simulation too short: no steady-state collections observed"
        )
    work = sum(pause.work for pause in pauses[half:])
    allocated = pauses[-1].clock - pauses[half - 1].clock
    simulated = (work / allocated) / analysis.nongenerational_mark_cons(load)
    predicted = analysis.relative_overhead(g, load)
    return SimulationPoint(
        g=g,
        load=load,
        simulated=simulated,
        predicted=predicted.value,
        exact=predicted.exact,
    )


def run_figure1(
    *,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    samples: int = 50,
    simulate: bool = True,
    simulation_gs: tuple[float, ...] = (0.125, 0.25, 0.375),
    simulation_loads: tuple[float, ...] = (2.0, 3.5),
) -> Figure1Result:
    """Regenerate Figure 1's curves, optionally with simulation checks."""
    curves = {
        load: analysis.overhead_curve(load, samples=samples)
        for load in loads
    }
    simulation: list[SimulationPoint] = []
    if simulate:
        for load in simulation_loads:
            for g in simulation_gs:
                simulation.append(simulate_relative_overhead(g, load))
    return Figure1Result(curves=curves, simulation=simulation)


def render_figure1(result: Figure1Result) -> str:
    lines = [
        "Figure 1: non-predictive mark/cons overhead relative to",
        "non-generational gc, vs. generation fraction g (per curve: L)",
        "",
    ]
    for load, points in sorted(result.curves.items()):
        series = [(p.g, p.relative_overhead) for p in points]
        exact_until = next(
            (p.g for p in points if not p.exact), points[-1].g
        )
        best = min(points, key=lambda p: p.relative_overhead)
        lines.append(
            f"L = {load}: min overhead {best.relative_overhead:.3f} at "
            f"g = {best.g:.3f}"
            + (
                f"; Theorem 4 exact for g < {exact_until:.3f}, "
                "fixed-point lower bound beyond"
                if exact_until < points[-1].g
                else "; Theorem 4 exact over the whole range"
            )
        )
        lines.append(render_series(series, x_label="g", y_label="overhead"))
        lines.append("")
    if result.simulation:
        table = TextTable(
            ["L", "g", "simulated", "predicted", "rel err", "regime"]
        )
        for point in result.simulation:
            table.add_row(
                point.load,
                point.g,
                point.simulated,
                point.predicted,
                point.relative_error,
                "exact" if point.exact else "lower-bound",
            )
        lines.append("Simulation cross-check of the closed forms:")
        lines.append(table.to_text())
    return "\n".join(lines)
