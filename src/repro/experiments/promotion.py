"""Experiment ``promotion``: promotion-policy ablation (paper §9).

Section 9 situates Larceny's promote-all policy against the promotion
policies of the literature ("typically managed as a pipeline between
the youngest and oldest generations"; Ungar-style tenuring).  This
ablation runs the same iterated-process workload — the regime that
embarrasses age-based heuristics — under the conventional collector
with increasing promotion thresholds, and under the hybrid.

Expected picture: tenuring reduces promotion traffic (under-age
survivors can die in the nursery instead of being dragged into the old
generation) but pays for it by re-copying the survivors that do not
die; the net effect depends on the nursery-to-phase-length ratio.  No
threshold fixes the fundamental problem the paper identifies: the
collector still bets on age, and the workload's age-death correlation
is inverted — the hybrid's non-predictive old area stays at least
competitive throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.phased import PhasedSchedule
from repro.trace.render import TextTable

__all__ = ["PromotionResult", "PromotionRow", "render_promotion", "run_promotion"]


@dataclass(frozen=True)
class PromotionRow:
    policy: str
    mark_cons: float
    words_promoted: int
    collections: int


@dataclass(frozen=True)
class PromotionResult:
    phase_words: int
    rows: tuple[PromotionRow, ...]

    def row(self, policy: str) -> PromotionRow:
        for row in self.rows:
            if row.policy == policy:
                return row
        raise KeyError(f"no promotion row named {policy!r}")


def _run_one(name: str, build, phase_words: int, phases: int, seed: int):
    heap = make_heap()
    roots = RootSet()
    collector = build(heap, roots)
    schedule = PhasedSchedule(
        phase_words, churn_fraction=0.2, carryover_fraction=0.1, seed=seed
    )
    mutator = LifetimeDrivenMutator(collector, roots, schedule)
    mutator.run(phases * phase_words)
    return PromotionRow(
        policy=name,
        mark_cons=collector.stats.mark_cons,
        words_promoted=collector.stats.words_promoted,
        collections=collector.stats.collections,
    )


def run_promotion(
    *,
    phase_words: int = 6_000,
    phases: int = 40,
    nursery_words: int = 2_048,
    old_words: int = 16_384,
    seed: int = 3,
) -> PromotionResult:
    """Run the promotion ablation on an iterated-process workload."""
    rows = []
    for threshold in (1, 2, 3):
        rows.append(
            _run_one(
                f"generational, promote after {threshold}",
                lambda heap, roots, t=threshold: GenerationalCollector(
                    heap,
                    roots,
                    [nursery_words, old_words],
                    auto_expand_oldest=False,
                    promotion_threshold=t,
                ),
                phase_words,
                phases,
                seed,
            )
        )
    rows.append(
        _run_one(
            "hybrid non-predictive old area",
            lambda heap, roots: HybridCollector(
                heap,
                roots,
                nursery_words,
                8,
                old_words // 8,
            ),
            phase_words,
            phases,
            seed,
        )
    )
    return PromotionResult(phase_words=phase_words, rows=tuple(rows))


def render_promotion(result: PromotionResult) -> str:
    table = TextTable(
        ["policy", "mark/cons", "words promoted", "collections"]
    )
    for row in result.rows:
        table.add_row(
            row.policy,
            f"{row.mark_cons:.3f}",
            row.words_promoted,
            row.collections,
        )
    return "\n".join(
        [
            "Promotion-policy ablation on an iterated-process workload",
            f"(phase = {result.phase_words:,} words)",
            table.to_text(),
        ]
    )
