"""Experiment ``antiprediction``: Section 3's central claims, executed.

Under the radioactive decay model:

1. a *conventional* generational collector — which condemns the
   youngest generations, betting they are mostly garbage — performs
   WORSE than a similar non-generational collector, because the
   youngest objects have had the least time to decay (Section 3);
2. a *non-predictive* generational collector — which condemns the
   steps that have had the longest time to decay while protecting the
   newest ones — performs BETTER than the non-generational collector
   (Sections 4-5), even though no lifetime predictor can beat chance.

This experiment runs the same decay workload, at the same total heap
size, under four collectors and compares their steady-state mark/cons
ratios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.decay import LN2
from repro.gc.collector import Collector
from repro.gc.generational import GenerationalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.gc.stopcopy import StopAndCopyCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import DecaySchedule
from repro.trace.render import TextTable

__all__ = ["AntipredictionResult", "render_antiprediction", "run_antiprediction"]


@dataclass(frozen=True)
class AntipredictionResult:
    """Steady-state mark/cons ratios under the decay workload.

    All collectors manage the same total heap of ``heap_words`` words
    (the stop-and-copy collector's two semispaces each get half, the
    standard space-time trade of semispace collection).
    """

    half_life: float
    load_factor: float
    heap_words: int
    mark_cons: dict[str, float]

    @property
    def conventional_loses(self) -> bool:
        """Claim 1: conventional generational worse than mark/sweep."""
        return self.mark_cons["generational"] > self.mark_cons["mark-sweep"]

    @property
    def nonpredictive_wins(self) -> bool:
        """Claim 2: non-predictive better than mark/sweep."""
        return self.mark_cons["non-predictive"] < self.mark_cons["mark-sweep"]


def _steady_mark_cons(collector: Collector) -> float:
    pauses = collector.stats.pauses
    half = len(pauses) // 2
    if half < 1:
        raise RuntimeError(
            f"{collector.name}: too few collections for a steady-state "
            f"measurement ({len(pauses)})"
        )
    work = sum(pause.work for pause in pauses[half:])
    allocated = pauses[-1].clock - pauses[half - 1].clock
    return work / allocated


def run_antiprediction(
    *,
    half_life: float = 2_000.0,
    load_factor: float = 3.5,
    step_count: int = 16,
    cycles: int = 30,
    seed: int = 5,
) -> AntipredictionResult:
    """Run the four-collector comparison."""
    live = half_life / LN2
    heap_words = int(live * load_factor)
    workload_words = cycles * heap_words

    def run_one(name: str, build) -> float:
        heap = make_heap()
        roots = RootSet()
        collector = build(heap, roots)
        mutator = LifetimeDrivenMutator(
            collector, roots, DecaySchedule(half_life, seed=seed)
        )
        mutator.run(workload_words)
        return _steady_mark_cons(collector)

    mark_cons = {
        "mark-sweep": run_one(
            "mark-sweep",
            lambda heap, roots: MarkSweepCollector(
                heap, roots, heap_words, auto_expand=False
            ),
        ),
        "stop-and-copy": run_one(
            "stop-and-copy",
            lambda heap, roots: StopAndCopyCollector(
                heap, roots, heap_words // 2, auto_expand=False
            ),
        ),
        "generational": run_one(
            "generational",
            lambda heap, roots: GenerationalCollector(
                heap,
                roots,
                [heap_words // 4, heap_words - heap_words // 4],
                auto_expand_oldest=False,
            ),
        ),
        "non-predictive": run_one(
            "non-predictive",
            lambda heap, roots: NonPredictiveCollector(
                heap, roots, step_count, heap_words // step_count
            ),
        ),
    }
    return AntipredictionResult(
        half_life=half_life,
        load_factor=load_factor,
        heap_words=heap_words,
        mark_cons=mark_cons,
    )


def render_antiprediction(result: AntipredictionResult) -> str:
    baseline = result.mark_cons["mark-sweep"]
    table = TextTable(["collector", "mark/cons", "relative to mark/sweep"])
    for name, value in sorted(
        result.mark_cons.items(), key=lambda item: item[1]
    ):
        table.add_row(name, f"{value:.4f}", f"{value / baseline:.3f}x")
    analytic = 1.0 / (result.load_factor - 1.0)
    return "\n".join(
        [
            "Anti-prediction experiment (radioactive decay model)",
            f"h = {result.half_life:,.0f}, L = {result.load_factor}, "
            f"heap = {result.heap_words:,} words",
            f"analytic mark/sweep ratio 1/(L-1) = {analytic:.4f}",
            table.to_text(),
            "",
            f"conventional generational loses to mark/sweep: "
            f"{result.conventional_loses} (paper: True)",
            f"non-predictive beats mark/sweep: "
            f"{result.nonpredictive_wins} (paper: True)",
        ]
    )
