"""Experiment ``table3``: GC overheads across the benchmark suite (Table 3).

Table 3 reports, per benchmark: storage allocated, estimated peak
storage, the semiheap size chosen by the stop-and-copy collector, the
mutator time, and (gc time)/(mutator time) under the non-generational
stop-and-copy collector and the conventional generational collector.

The simulator has no wall clock; its stand-ins (DESIGN.md §2):

* storage allocated   -> words allocated,
* peak storage        -> the largest live count any collection saw,
* semiheap size       -> the semispace high-water mark the auto-sizing
                         stop-and-copy collector chose,
* mutator time        -> words allocated (the paper's benchmarks are
                         allocation-bound by selection),
* gc/mutator          -> collector work words / allocated words.

The absolute percentages cannot match a 1997 SPARC; what must
reproduce is the *shape*: the generational collector wins on
everything except 10dynamic, where it does WORSE than stop-and-copy
(the paper's central empirical anomaly), and wins only modestly on
nboyer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.harness import GcGeometry, RunOutcome, run_benchmark_under
from repro.programs.registry import BENCHMARKS, Benchmark
from repro.trace.render import TextTable

__all__ = ["Table3Result", "Table3Row", "render_table3", "run_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One benchmark's measurements under both collectors."""

    name: str
    words_allocated: int
    peak_live_words: int
    semispace_words: int
    stop_and_copy_ratio: float
    generational_ratio: float

    @property
    def generational_wins(self) -> bool:
        return self.generational_ratio < self.stop_and_copy_ratio


@dataclass(frozen=True)
class Table3Result:
    rows: tuple[Table3Row, ...]

    def row(self, name: str) -> Table3Row:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no Table 3 row named {name!r}")


def _measure(benchmark: Benchmark, scale: int, geometry: GcGeometry) -> Table3Row:
    stop_copy: RunOutcome = run_benchmark_under(
        benchmark, "stop-and-copy", scale=scale, geometry=geometry
    )
    generational: RunOutcome = run_benchmark_under(
        benchmark, "generational", scale=scale, geometry=geometry
    )
    return Table3Row(
        name=benchmark.name,
        words_allocated=stop_copy.words_allocated,
        peak_live_words=stop_copy.peak_live_words,
        semispace_words=stop_copy.semispace_words or 0,
        stop_and_copy_ratio=stop_copy.gc_mutator_ratio,
        generational_ratio=generational.gc_mutator_ratio,
    )


def run_table3(
    *, scale: int = 1, geometry: GcGeometry | None = None
) -> Table3Result:
    """Run all six benchmarks under both Table 3 collectors."""
    geometry = geometry if geometry is not None else GcGeometry()
    rows = tuple(
        _measure(benchmark, scale, geometry) for benchmark in BENCHMARKS
    )
    return Table3Result(rows=rows)


def render_table3(result: Table3Result) -> str:
    table = TextTable(
        [
            "name",
            "words allocated",
            "peak live",
            "semispace",
            "gc/mutator (s&c)",
            "gc/mutator (gen)",
            "winner",
        ]
    )
    for row in result.rows:
        table.add_row(
            row.name,
            row.words_allocated,
            row.peak_live_words,
            row.semispace_words,
            f"{100 * row.stop_and_copy_ratio:.1f}%",
            f"{100 * row.generational_ratio:.1f}%",
            "generational" if row.generational_wins else "stop-and-copy",
        )
    return (
        "Table 3: storage allocation and garbage collection overheads\n"
        "(work-unit analogues; see EXPERIMENTS.md for the mapping)\n"
        + table.to_text()
    )
