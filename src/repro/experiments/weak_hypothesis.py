"""Experiment ``weakhyp``: where the conventional collector wins.

The reproduction would be propaganda if it only showed the regimes
that favor non-predictive collection.  Section 7 is explicit about the
other side: "compared to non-generational collectors, conventional
generational collectors make short-lived objects much cheaper — a
factor of 10 is typical", because most real programs satisfy the weak
generational hypothesis (most objects die young).

This experiment runs a bimodal workload — 90% of objects die within a
few hundred words, the rest have a long exponential tail — under the
conventional generational collector, the standalone non-predictive
collector, and mark/sweep, sweeping the total heap size.  The measured
picture is a crossover:

* under **heavy load** (small heaps), non-generational costs explode
  like 1/(L-1) while the conventional collector's minor-collection
  cost is pinned near the nursery survival fraction — the §7
  advantage; the non-predictive collector does worst of all, because
  every one of its collections re-copies the long-lived survivors;
* under **light load** (large heaps), everything is cheap, the
  conventional collector's survival-fraction floor becomes the
  *largest* cost in the room, and the non-predictive collector wins
  again (its protected steps let infants die in peace).

Both halves are the paper's own story: conventional collection for the
young (§7), non-predictive collection where load and lifetimes stop
cooperating (§8 deploys it for the oldest generation only).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gc.generational import GenerationalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.synthetic import BimodalSchedule
from repro.trace.render import TextTable

__all__ = [
    "WeakHypothesisPoint",
    "WeakHypothesisResult",
    "render_weak_hypothesis",
    "run_weak_hypothesis",
]


@dataclass(frozen=True)
class WeakHypothesisPoint:
    """Mark/cons ratios at one heap size."""

    heap_words: int
    mark_cons: dict[str, float]

    def winner(self) -> str:
        return min(self.mark_cons, key=self.mark_cons.get)


@dataclass(frozen=True)
class WeakHypothesisResult:
    """The load sweep under an infant-mortality workload."""

    young_fraction: float
    young_lifetime: int
    old_half_life: float
    points: tuple[WeakHypothesisPoint, ...]

    @property
    def heaviest(self) -> WeakHypothesisPoint:
        return self.points[0]

    @property
    def lightest(self) -> WeakHypothesisPoint:
        return self.points[-1]


def _steady_mark_cons(collector) -> float:
    pauses = collector.stats.pauses
    half = len(pauses) // 2
    if half < 1:
        return collector.stats.mark_cons
    work = sum(pause.work for pause in pauses[half:])
    allocated = pauses[-1].clock - pauses[half - 1].clock
    return work / allocated if allocated else 0.0


def run_weak_hypothesis(
    *,
    young_fraction: float = 0.9,
    young_lifetime: int = 200,
    old_half_life: float = 8_000.0,
    heap_sizes: tuple[int, ...] = (3_072, 4_096, 6_144, 8_192, 16_384),
    workload_words: int = 250_000,
    seed: int = 17,
) -> WeakHypothesisResult:
    """Run the bimodal comparison across heap sizes (ascending)."""

    def run_one(build) -> float:
        heap = make_heap()
        roots = RootSet()
        collector = build(heap, roots)
        mutator = LifetimeDrivenMutator(
            collector,
            roots,
            BimodalSchedule(
                young_fraction, young_lifetime, old_half_life, seed=seed
            ),
        )
        mutator.run(workload_words)
        return _steady_mark_cons(collector)

    points = []
    for heap_words in sorted(heap_sizes):
        mark_cons = {
            "mark-sweep": run_one(
                lambda heap, roots: MarkSweepCollector(
                    heap, roots, heap_words, auto_expand=False
                )
            ),
            "generational": run_one(
                lambda heap, roots: GenerationalCollector(
                    heap,
                    roots,
                    [heap_words // 8, heap_words - heap_words // 8],
                    auto_expand_oldest=False,
                )
            ),
            "non-predictive": run_one(
                lambda heap, roots: NonPredictiveCollector(
                    heap, roots, 16, heap_words // 16
                )
            ),
        }
        points.append(
            WeakHypothesisPoint(heap_words=heap_words, mark_cons=mark_cons)
        )
    return WeakHypothesisResult(
        young_fraction=young_fraction,
        young_lifetime=young_lifetime,
        old_half_life=old_half_life,
        points=tuple(points),
    )


def render_weak_hypothesis(result: WeakHypothesisResult) -> str:
    table = TextTable(
        ["heap words", "mark-sweep", "generational", "non-predictive", "winner"]
    )
    for point in result.points:
        table.add_row(
            point.heap_words,
            f"{point.mark_cons['mark-sweep']:.3f}",
            f"{point.mark_cons['generational']:.3f}",
            f"{point.mark_cons['non-predictive']:.3f}",
            point.winner(),
        )
    return "\n".join(
        [
            "Weak-generational-hypothesis workload (infant mortality)",
            f"({100 * result.young_fraction:.0f}% die within "
            f"{result.young_lifetime} words; survivors' half-life "
            f"{result.old_half_life:,.0f})",
            table.to_text(),
            "",
            "Heavy load: the conventional collector's youth bet pays",
            "(§7's 'factor of 10').  Light load: the bet becomes the",
            "largest cost in the room and non-predictive wins again —",
            "which is why §8 combines them.",
        ]
    )
