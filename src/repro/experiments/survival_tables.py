"""Experiments ``table4``..``table7``: survival rates by age.

The paper's Tables 4-7 report, for four workloads, the percentage of
storage in each age bracket that survives the next bracket's worth of
allocation:

* Table 4 — one iteration of dynamic: flat, very high (91-99%);
* Table 5 — the full 10dynamic: survival *decreases* with age
  (59% -> 23% -> 1%), the opposite of the strong generational
  hypothesis, because every iteration ends in a mass extinction;
* Table 6 — nboyer: high and roughly increasing with age (the suite's
  only weak evidence for the strong hypothesis);
* Table 7 — sboyer: essentially flat at 95-100%.

Bracket widths are scaled with each run exactly as the figures' epochs
are (see storage_profiles.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.programs.boyer import run_nboyer, run_sboyer
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector
from repro.trace.recorder import LifetimeRecorder
from repro.trace.survival import SurvivalTable, survival_table

__all__ = [
    "SurvivalResult",
    "render_survival",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "traced_survival",
]


@dataclass(frozen=True)
class SurvivalResult:
    """A regenerated survival table."""

    name: str
    table: SurvivalTable
    words_allocated: int

    def rates(self) -> list[float | None]:
        return self.table.rates()


def traced_survival(
    name: str,
    program: Callable[[Machine], object],
    *,
    steps_per_run: int,
    bracket_count: int,
) -> SurvivalResult:
    """Record a program's lifetimes and tabulate survival by age."""
    dry = Machine(TracingCollector)
    program(dry)
    total = dry.stats.words_allocated
    age_step = max(1, total // steps_per_run)

    machine = Machine(TracingCollector)
    # Sample at a finer granularity than the age brackets so the
    # recorder's death quantization does not bias bracket boundaries.
    recorder = LifetimeRecorder(machine, max(1, age_step // 4))
    program(machine)
    trace = recorder.finish()
    return SurvivalResult(
        name=name,
        table=survival_table(
            trace, age_step, bracket_count=bracket_count
        ),
        words_allocated=trace.words_allocated,
    )


def run_table4(*, definitions: int = 60, depth: int = 6) -> SurvivalResult:
    """Table 4: survival by age for ONE iteration of dynamic.

    The corpus is generated before the recorder attaches (the paper
    reads the source "only once, before the measured portion").
    """
    from repro.programs.dynamic import generate_corpus, infer_program

    dry = Machine(TracingCollector)
    corpus = generate_corpus(dry, definitions=definitions, depth=depth)
    before = dry.stats.words_allocated
    infer_program(dry, corpus)
    age_step = max(1, (dry.stats.words_allocated - before) // 18)

    machine = Machine(TracingCollector)
    corpus = generate_corpus(machine, definitions=definitions, depth=depth)
    recorder = LifetimeRecorder(machine, max(1, age_step // 4))
    infer_program(machine, corpus)
    trace = recorder.finish()
    return SurvivalResult(
        name="table4 (dynamic, one iteration)",
        table=survival_table(trace, age_step, bracket_count=9),
        words_allocated=trace.words_allocated,
    )


def run_table5(
    *, iterations: int = 10, definitions: int = 60, depth: int = 6
) -> SurvivalResult:
    """Table 5: survival by age for the full 10dynamic."""
    # The paper's brackets are 500 kB against ~1.8 MB iterations:
    # roughly 3.6 brackets per iteration.  The iteration size is the
    # difference of a 2-iteration and a 1-iteration dry run, so the
    # one-time corpus allocation does not distort the bracket width.
    from repro.programs.dynamic import generate_corpus, infer_program

    dry = Machine(TracingCollector)
    dry_corpus = generate_corpus(dry, definitions=definitions, depth=depth)
    before = dry.stats.words_allocated
    infer_program(dry, dry_corpus)
    iteration_words = dry.stats.words_allocated - before
    age_step = max(1, int(iteration_words / 3.6))

    machine = Machine(TracingCollector)
    corpus = generate_corpus(machine, definitions=definitions, depth=depth)
    recorder = LifetimeRecorder(machine, max(1, age_step // 4))
    for _ in range(iterations):
        infer_program(machine, corpus)
    trace = recorder.finish()
    return SurvivalResult(
        name="table5 (10dynamic)",
        table=survival_table(trace, age_step, bracket_count=3),
        words_allocated=trace.words_allocated,
    )


def run_table6(*, n: int = 0) -> SurvivalResult:
    """Table 6: survival by age for nboyer."""
    return traced_survival(
        f"table6 (nboyer, n={n})",
        lambda machine: run_nboyer(machine, n),
        steps_per_run=20,
        bracket_count=9,
    )


def run_table7(*, n: int = 0) -> SurvivalResult:
    """Table 7: survival by age for sboyer."""
    return traced_survival(
        f"table7 (sboyer, n={n})",
        lambda machine: run_sboyer(machine, n),
        steps_per_run=20,
        bracket_count=9,
    )


def render_survival(result: SurvivalResult) -> str:
    return "\n".join(
        [
            f"{result.name}: survival rates by age of object",
            f"(bracket = {result.table.age_step:,} words; "
            f"{result.words_allocated:,} words allocated)",
            result.table.to_text(),
        ]
    )
