"""Experiment ``table1``: the worked example of Section 4 (Table 1).

Reproduces the paper's Table 1: a 7-step non-predictive collector with
1024-word steps, fixed tuning parameter j = 1, driven by the
idealized halving workload (half-life 1024, inverse load factor 3.5).
The experiment runs the collector to its steady cycle and captures the
live storage in each step at every 1024-word boundary of one full
cycle, plus the post-collection row.

Expected values are the paper's, modulo a placement jitter of at most
a couple of words per step: the allocation that triggers the
collection belongs to the next cohort, a boundary effect the paper's
idealized table rounds away.  The steady-state mark/cons ratio is
1024/5120 = 0.2 against 0.4 for a non-generational mark/sweep
collector at the same load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.policy import FixedJPolicy
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.heap.backend import make_heap
from repro.heap.roots import RootSet
from repro.mutator.base import LifetimeDrivenMutator
from repro.mutator.decay_mutator import HalvingSchedule
from repro.trace.render import TextTable

__all__ = ["PAPER_TABLE1", "Table1Result", "render_table1", "run_table1"]

#: The paper's Table 1 rows (t = 1024..5120 and the post-gc row),
#: live words in steps 1..7.  The paper's t=0 row equals the gc row.
PAPER_TABLE1: dict[int, tuple[int, ...]] = {
    1024: (0, 0, 0, 0, 1024, 512, 512),
    2048: (0, 0, 0, 1024, 512, 256, 256),
    3072: (0, 0, 1024, 512, 256, 128, 128),
    4096: (0, 1024, 512, 256, 128, 64, 64),
    5120: (1024, 512, 256, 128, 64, 32, 32),
    -1: (0, 0, 0, 0, 0, 1024, 1024),  # the "gc" row
}


@dataclass(frozen=True)
class Table1Result:
    """Measured step occupancies for one steady-state cycle."""

    #: Live words per step at each boundary of the cycle, keyed by the
    #: paper's row time (1024..5120); key -1 is the post-gc row.
    rows: dict[int, tuple[int, ...]]
    #: Steady-state mark/cons ratio (the paper's 0.2).
    mark_cons: float
    #: The non-generational mark/sweep ratio at the same load (0.4).
    nongenerational_mark_cons: float

    def max_deviation(self) -> int:
        """Largest |measured - paper| entry across all rows."""
        worst = 0
        for key, expected in PAPER_TABLE1.items():
            measured = self.rows[key]
            for have, want in zip(measured, expected):
                worst = max(worst, abs(have - want))
        return worst


def run_table1(
    *,
    step_words: int = 1024,
    step_count: int = 7,
    warmup_cycles: int = 6,
) -> Table1Result:
    """Run the Table 1 configuration and capture one steady cycle."""
    heap = make_heap()
    roots = RootSet()
    collector = NonPredictiveCollector(
        heap,
        roots,
        step_count,
        step_words,
        policy=FixedJPolicy(1),
        initial_j=1,
    )
    mutator = LifetimeDrivenMutator(
        collector, roots, HalvingSchedule(step_words)
    )

    def live_per_step() -> tuple[int, ...]:
        counts = [0] * step_count
        for obj_id in mutator.held_ids():
            number = collector.step_number(heap.get(obj_id))
            if number is not None:
                counts[number - 1] += 1
        return tuple(counts)

    cycle_words = 5 * step_words  # collection period at this load
    # Warm up: fill from empty and let the cycle stabilize.
    mutator.run(warmup_cycles * cycle_words)
    # Align to the start of a cycle: run up to just after a collection.
    collections = collector.stats.collections
    while collector.stats.collections == collections:
        mutator.step()
    mutator.release_due()

    rows: dict[int, tuple[int, ...]] = {-1: live_per_step()}
    copied_before = collector.stats.words_copied
    # The allocation that triggered the aligning collection has already
    # consumed one word of this cycle; the cycle's t=0 is one word back.
    cycle_start = heap.clock - 1
    for boundary in range(1, 6):
        target = cycle_start + boundary * step_words
        while heap.clock < target:
            mutator.step()
        mutator.release_due()
        rows[boundary * step_words] = live_per_step()
    # Finish the cycle (trigger the collection) to measure mark/cons.
    collections = collector.stats.collections
    while collector.stats.collections == collections:
        mutator.step()
    copied = collector.stats.words_copied - copied_before
    allocated = heap.clock - 1 - cycle_start
    return Table1Result(
        rows=rows,
        mark_cons=copied / allocated,
        nongenerational_mark_cons=2 * copied / allocated,
    )


def render_table1(result: Table1Result) -> str:
    table = TextTable(["t", *[f"step {i}" for i in range(1, 8)]])
    for key in (1024, 2048, 3072, 4096, 5120, -1):
        label = "gc" if key == -1 else str(key)
        table.add_row(label, *result.rows[key])
    lines = [
        "Table 1: live storage in a non-predictive generational collector",
        table.to_text(),
        "",
        f"steady-state mark/cons: {result.mark_cons:.3f} (paper: 0.200)",
        (
            "non-generational mark/sweep at the same load: "
            f"{result.nongenerational_mark_cons:.3f} (paper: 0.400)"
        ),
        f"max deviation from the paper's idealized entries: "
        f"{result.max_deviation()} words",
    ]
    return "\n".join(lines)
