"""Experiments ``figure2``/``figure3``/``figure4``: live-storage profiles.

The paper's Figures 2-4 plot live storage against allocation time for
one iteration of dynamic (100,000-byte epochs), nboyer (500,000-byte
epochs), and sboyer, with storage older than ten epochs shown as the
"old" (white) band.

The simulator regenerates the same pictures as numeric profiles (and
ASCII renderings).  Epoch sizes are scaled with the run: the paper's
epoch-to-run-length ratios are preserved (one dynamic iteration spans
~18 epochs; the boyer runs span ~20), so the bands carry the same
information at the smaller scale.  Expected shapes:

* figure2 — a climbing ramp: nearly every epoch's storage survives,
  band on band, until the iteration's mass extinction;
* figure3 — nboyer: a growing staircase of canonicalized subtrees
  turning into old storage;
* figure4 — sboyer: like nboyer but far smaller, dominated by
  long-lived storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.programs.boyer import run_nboyer, run_sboyer
from repro.runtime.machine import Machine
from repro.trace.collector import TracingCollector
from repro.trace.profile import StorageProfile, storage_profile
from repro.trace.recorder import LifetimeRecorder

__all__ = [
    "ProfileResult",
    "render_profile",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "traced_profile",
]


@dataclass(frozen=True)
class ProfileResult:
    """A regenerated storage figure."""

    name: str
    profile: StorageProfile
    words_allocated: int
    epoch_words: int


def traced_profile(
    name: str,
    program: Callable[[Machine], object],
    *,
    epochs_per_run: int,
) -> ProfileResult:
    """Run a program twice: once to size the epochs, once to record.

    The recorder needs the epoch size before the run starts; a dry run
    measures the total allocation (the programs are deterministic), and
    the traced run then uses ``total / epochs_per_run``.
    """
    if epochs_per_run < 2:
        raise ValueError(
            f"need at least 2 epochs per run, got {epochs_per_run!r}"
        )
    dry = Machine(TracingCollector)
    program(dry)
    total = dry.stats.words_allocated
    if total < epochs_per_run:
        raise RuntimeError(
            f"{name}: program allocated only {total} words; cannot form "
            f"{epochs_per_run} epochs"
        )
    epoch = max(1, total // epochs_per_run)

    machine = Machine(TracingCollector)
    recorder = LifetimeRecorder(machine, epoch)
    program(machine)
    trace = recorder.finish()
    return ProfileResult(
        name=name,
        profile=storage_profile(trace, epoch),
        words_allocated=trace.words_allocated,
        epoch_words=epoch,
    )


def run_figure2(*, definitions: int = 60, depth: int = 6) -> ProfileResult:
    """Figure 2: live storage for ONE iteration of dynamic.

    The corpus is generated before the recorder attaches, as the paper
    reads the source "only once, before the measured portion".
    """
    from repro.programs.dynamic import generate_corpus, infer_program

    # Dry run to size the epochs from the measured (post-corpus) words.
    dry = Machine(TracingCollector)
    corpus = generate_corpus(dry, definitions=definitions, depth=depth)
    before = dry.stats.words_allocated
    infer_program(dry, corpus)
    measured = dry.stats.words_allocated - before
    epoch = max(1, measured // 18)

    machine = Machine(TracingCollector)
    corpus = generate_corpus(machine, definitions=definitions, depth=depth)
    recorder = LifetimeRecorder(machine, epoch)
    infer_program(machine, corpus)
    trace = recorder.finish()
    return ProfileResult(
        name="figure2 (dynamic, one iteration)",
        profile=storage_profile(trace, epoch),
        words_allocated=trace.words_allocated,
        epoch_words=epoch,
    )


def run_figure3(*, n: int = 0) -> ProfileResult:
    """Figure 3: live storage for the nboyer benchmark."""
    return traced_profile(
        f"figure3 (nboyer, n={n})",
        lambda machine: run_nboyer(machine, n),
        epochs_per_run=20,
    )


def run_figure4(*, n: int = 0) -> ProfileResult:
    """Figure 4: live storage for the sboyer benchmark."""
    return traced_profile(
        f"figure4 (sboyer, n={n})",
        lambda machine: run_sboyer(machine, n),
        epochs_per_run=20,
    )


def render_profile(result: ProfileResult) -> str:
    profile = result.profile
    return "\n".join(
        [
            f"{result.name}: live storage versus allocation time",
            f"({result.words_allocated:,} words allocated; epoch = "
            f"{result.epoch_words:,} words; peak live = "
            f"{profile.peak_live_words:,} words)",
            profile.to_text(),
        ]
    )
