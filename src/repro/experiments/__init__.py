"""Drivers that regenerate every table and figure of the paper."""

from repro.experiments.harness import (
    GcGeometry,
    RunOutcome,
    collector_factory,
    run_benchmark_under,
)
from repro.experiments.runner import (
    EXPERIMENTS,
    Experiment,
    experiment_names,
    run_experiment,
)

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "GcGeometry",
    "RunOutcome",
    "collector_factory",
    "experiment_names",
    "run_benchmark_under",
    "run_experiment",
]
