"""Incremental tri-color mark/sweep with bounded pauses.

The stop-the-world mark/sweep collector pays one pause proportional to
the live storage; under the paper's decay model the long-lived tail
makes that pause arbitrarily expensive.  This collector splits the
same mark work into *slices* bounded by a configurable word budget,
run at allocation safepoints, so every mutator-visible pause is
``O(budget)`` instead of ``O(live)``.

The algorithm is snapshot-at-the-beginning (SATB) tri-color marking:

* **Cycle open** (a safepoint where occupancy crosses
  ``trigger_fraction`` of capacity): reset every color to white via
  :meth:`~repro.heap.heap.SimulatedHeap.begin_mark_epoch`, record the
  epoch clock, and gray every root id.  The collection's obligation is
  fixed here: everything reachable *at this instant* will be marked.
* **Slices** (every later allocation safepoint while the cycle is
  open): pop gray objects, scan their current fields, gray white
  in-space targets, stop after ``slice_budget`` words of scanning.
  Each slice records a ``"slice"`` pause and emits a ``slice`` event.
* **Write barrier** (SATB deletion barrier): before any mutator store
  overwrites a slot, :meth:`remember_store` grays the slot's *old*
  referent if it is still white — a deleted edge can never hide a
  snapshot-reachable object from the wavefront.  The barrier fires for
  every store, including overwrites with non-pointers.
* **Allocate-black**: objects born while a cycle is open are
  classified by birth clock (``birth >= epoch``) and survive the
  cycle's sweep unconditionally; they are never pushed, scanned, or
  recolored, so allocation stays barrier-free.
* **Cycle close** (an explicit ``collect()`` or an allocation that no
  longer fits): drain the remaining wavefront, then sweep the space,
  freeing exactly the objects that are white *and* pre-epoch.

Because marking always drains before sweeping, the set of objects
scanned in one cycle is exactly the set reachable at the cycle's open
— independent of the slice budget and of how mutation interleaves
with the slices.  Every :class:`~repro.gc.stats.GcStats` counter is
therefore *budget-invariant*: replaying one script at budgets 1, 7,
64 and unbounded produces identical stats, survivor sets, and final
graphs (the oracle of :mod:`repro.verify.budget`).  Only the pause
*log* differs — which is the point.

SATB keeps objects that die mid-cycle ("floating garbage") until the
next cycle, so when a finished cycle still cannot satisfy an
allocation the collector runs a second, now-precise collection from
the quiescent heap before expanding — the same degradation ladder as
mark-sweep, one rung longer.
"""

from __future__ import annotations

from repro.gc.collector import Collector, HeapExhausted
from repro.heap.heap import SimulatedHeap
from repro.heap.object_model import HeapObject
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["BLACK", "GRAY", "WHITE", "IncrementalCollector"]

#: Tri-color mark states as stored in the heap's color word.
WHITE, GRAY, BLACK = 0, 1, 2


class IncrementalCollector(Collector):
    """Tri-color incremental mark/sweep over one bounded space.

    Args:
        heap: the simulated heap (the collector registers one space).
        roots: the machine root set.
        heap_words: initial capacity of the heap space in words.
        slice_budget: words of marking per slice; ``None`` drains the
            whole wavefront in one pause (stop-the-world behaviour
            with incremental bookkeeping).
        trigger_fraction: occupancy fraction at which a mark cycle
            opens, in ``(0, 1]``.
        auto_expand / load_factor / max_heap_words: the mark-sweep
            expansion policy, unchanged.
    """

    name = "incremental"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        heap_words: int,
        *,
        slice_budget: int | None = 64,
        trigger_fraction: float = 0.5,
        auto_expand: bool = True,
        load_factor: float = 2.0,
        max_heap_words: int | None = None,
    ) -> None:
        super().__init__(heap, roots)
        if heap_words <= 0:
            raise ValueError(f"heap size must be positive, got {heap_words!r}")
        if slice_budget is not None and slice_budget < 1:
            raise ValueError(
                f"slice budget must be >= 1 word or None, got {slice_budget!r}"
            )
        if not 0.0 < trigger_fraction <= 1.0:
            raise ValueError(
                f"trigger fraction must be in (0, 1], got {trigger_fraction!r}"
            )
        if load_factor <= 1.0:
            raise ValueError(
                f"load factor must exceed 1, got {load_factor!r}"
            )
        if max_heap_words is not None and max_heap_words < heap_words:
            raise ValueError(
                f"expansion cap {max_heap_words} is below the initial "
                f"heap size {heap_words}"
            )
        self.space = heap.add_space("inc-heap", heap_words)
        self.slice_budget = slice_budget
        self.trigger_fraction = trigger_fraction
        self.auto_expand = auto_expand
        self.load_factor = load_factor
        self.max_heap_words = max_heap_words
        #: True while a mark cycle is in progress (the heap is then an
        #: "in-cycle" snapshot: some garbage may be resident, and the
        #: auditor switches to the tri-color invariant checks).
        self.cycle_open = False
        #: Heap clock at the current cycle's open; objects with
        #: ``birth >= epoch_clock`` are allocate-black.
        self.epoch_clock = 0
        #: Gray wavefront: ids graying-marked but not yet scanned.
        self.gray_stack: list[int] = []
        #: Collector-side telemetry (deliberately *not* GcStats fields:
        #: slice/barrier activity depends on the budget, and GcStats
        #: must stay budget-invariant).
        self.cycles_opened = 0
        self.slices_run = 0
        self.satb_grays = 0

    def managed_spaces(self) -> frozenset:
        return frozenset((self.space,))

    def export_state(self) -> dict:
        # The color arena travels with the heap snapshot; the gray
        # stack is ordered (drain order is observable) and serialized
        # verbatim.
        return {
            "space_capacity": self.space.capacity,
            "slice_budget": self.slice_budget,
            "trigger_fraction": self.trigger_fraction,
            "auto_expand": self.auto_expand,
            "load_factor": self.load_factor,
            "max_heap_words": self.max_heap_words,
            "cycle_open": self.cycle_open,
            "epoch_clock": self.epoch_clock,
            "gray_stack": list(self.gray_stack),
            "cycles_opened": self.cycles_opened,
            "slices_run": self.slices_run,
            "satb_grays": self.satb_grays,
        }

    def import_state(self, state: dict) -> None:
        self.space.capacity = state["space_capacity"]
        self.slice_budget = state["slice_budget"]
        self.trigger_fraction = state["trigger_fraction"]
        self.auto_expand = state["auto_expand"]
        self.load_factor = state["load_factor"]
        self.max_heap_words = state["max_heap_words"]
        self.cycle_open = state["cycle_open"]
        self.epoch_clock = state["epoch_clock"]
        self.gray_stack = [int(oid) for oid in state["gray_stack"]]
        self.cycles_opened = state["cycles_opened"]
        self.slices_run = state["slices_run"]
        self.satb_grays = state["satb_grays"]

    # ------------------------------------------------------------------
    # Allocation (every call is a safepoint)
    # ------------------------------------------------------------------

    def _reserve(self, size: int) -> Space:
        space = self.space
        capacity = space.capacity
        if capacity is not None and space.used + size > capacity:
            was_open = self.cycle_open
            self.collect()
            if (
                was_open
                and space.capacity is not None
                and space.used + size > space.capacity
            ):
                # The finished cycle swept only to its snapshot, so
                # SATB floating garbage survived; a second collection
                # from the now-quiescent heap is precise.
                self.collect()
            if (
                space.capacity is not None
                and space.used + size > space.capacity
            ):
                if self.auto_expand:
                    self._expand(size)
                if (
                    space.capacity is not None
                    and space.used + size > space.capacity
                ):
                    raise HeapExhausted(self, size)
        elif self.cycle_open:
            self._mark_slice()
        elif capacity is not None and space.used + size > int(
            capacity * self.trigger_fraction
        ):
            self._open_cycle("incremental")
            self._mark_slice()
        return space

    def reserve_window(self, max_objects: int, size: int = 1) -> tuple[int, int]:
        """Bump windows, capped so no per-object safepoint is skipped.

        The base window covers the space's whole free room, which
        would silently jump over the allocation that crosses the mark
        trigger and over every slice a per-object run would have
        paused for.  Three regimes keep windowed allocation
        observably identical to ``max_objects`` individual
        :meth:`allocate_id` calls (the plan-equivalence pin):

        * cycle open, wavefront live — every later allocation would
          run its own slice, so the window is one object;
        * cycle open, wavefront drained — later safepoints are no-ops
          (nothing between window allocations can re-gray: there are
          no heap stores inside a window), so the full window is safe;
        * cycle closed — the window stops at the last object that
          keeps occupancy at or under the trigger; the next
          reservation then opens the cycle exactly where a per-object
          run would have.
        """
        if max_objects <= 0:
            raise ValueError(
                f"window must cover >= 1 object, got {max_objects!r}"
            )
        space = self._reserve(size)
        count = space.free // size
        if count > max_objects:
            count = max_objects
        if self.cycle_open:
            if self.gray_stack:
                count = 1
        else:
            capacity = space.capacity
            if capacity is not None:
                room = (
                    int(capacity * self.trigger_fraction) - space.used
                ) // size
                if room < count:
                    # _reserve just declined to open a cycle, so this
                    # first object fits under the trigger: room >= 1.
                    count = max(1, room)
        first, end = self.heap.bulk_allocate(count, size, space)
        stats = self.stats
        stats.words_allocated += count * size
        stats.objects_allocated += count
        return first, end

    def _expand(self, pending: int) -> None:
        """Grow the heap to restore the target inverse load factor."""
        needed = self.space.used + pending
        target = max(int(needed * self.load_factor), self.space.capacity or 0)
        if self.max_heap_words is not None:
            target = min(target, self.max_heap_words)
        if target > (self.space.capacity or 0):
            if self.metrics is not None:
                self.metrics.event(
                    "heap-expansion",
                    space=self.space.name,
                    old_capacity=self.space.capacity or 0,
                    new_capacity=target,
                )
            self.space.capacity = target

    # ------------------------------------------------------------------
    # The tri-color cycle
    # ------------------------------------------------------------------

    def _open_cycle(self, kind: str) -> None:
        """Snapshot the roots and begin a new mark epoch."""
        heap = self.heap
        heap.begin_mark_epoch()
        self.epoch_clock = heap.clock
        self.cycle_open = True
        self.cycles_opened += 1
        gray = self.gray_stack
        gray.clear()
        space = self.space
        for rid in self._root_ids():
            if (
                heap.space_if_live(rid) is space
                and heap.color_of(rid) == WHITE
            ):
                heap.set_color(rid, GRAY)
                gray.append(rid)
        if self.metrics is not None:
            self.metrics.event(
                "collection-start", kind=kind, clock=heap.clock
            )

    def _scan(self, limit: int | None) -> int:
        """Scan gray objects until the wavefront drains or ``limit``
        words have been examined; returns the words scanned.

        The loop lives in the heap backends (``drain_gray``) so the
        flat backend can hoist its arena lookups — the per-ref method
        calls here used to keep flat's incremental speedup at half of
        every other collector's.
        """
        work = self.heap.drain_gray(
            self.gray_stack, self.space, self.epoch_clock, limit
        )
        self.stats.words_marked += work
        return work

    def _mark_slice(self) -> None:
        """One budgeted mark increment at an allocation safepoint."""
        if not self.gray_stack:
            return  # wavefront drained; the cycle awaits its sweep
        heap = self.heap
        work = self._scan(self.slice_budget)
        self.slices_run += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="slice",
            work=work,
            reclaimed=0,
            live=self.space.used,
        )
        if self.metrics is not None:
            self.metrics.event(
                "slice",
                clock=heap.clock,
                budget=self.slice_budget,
                work=work,
                backlog=len(self.gray_stack),
                live=self.space.used,
            )
        self._finish_collection()

    # ------------------------------------------------------------------
    # Write barrier (SATB deletion barrier)
    # ------------------------------------------------------------------

    def remember_store(
        self, obj: HeapObject, slot: int, target: HeapObject | None
    ) -> None:
        """Gray the overwritten slot's old referent while marking.

        ``target`` (the new value) is irrelevant to SATB — only the
        edge being *deleted* can hide a snapshot-reachable object.
        """
        if not self.cycle_open:
            return
        heap = self.heap
        entry = heap.slot_ref(obj.obj_id, slot)
        if entry is None:
            return  # old value was not a pointer
        old_ref = entry[1]
        if (
            heap.space_if_live(old_ref) is self.space
            and heap.birth_of(old_ref) < self.epoch_clock
            and heap.color_of(old_ref) == WHITE
        ):
            heap.set_color(old_ref, GRAY)
            self.gray_stack.append(old_ref)
            self.satb_grays += 1

    # ------------------------------------------------------------------
    # Collection (cycle close)
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Finish the open cycle (or run a whole one) and sweep."""
        heap = self.heap
        space = self.space
        if not self.cycle_open:
            self._open_cycle("full")
        work = self._scan(None)

        marked = heap.survivor_ids(space, self.epoch_clock)
        self.stats.words_swept += space.used
        reclaimed = heap.free_unmarked(space, marked)
        live = space.used

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.major_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="full",
            work=work,
            reclaimed=reclaimed,
            live=live,
        )
        self.cycle_open = False
        self.gray_stack.clear()
        if self.auto_expand:
            minimum = int(live * self.load_factor)
            if self.max_heap_words is not None:
                minimum = min(minimum, self.max_heap_words)
            if (space.capacity or 0) < minimum:
                if self.metrics is not None:
                    self.metrics.event(
                        "heap-expansion",
                        space=space.name,
                        old_capacity=space.capacity or 0,
                        new_capacity=minimum,
                    )
                space.capacity = minimum
        self._finish_collection()

    def on_static_promotion(self) -> None:
        """A full static promotion moved/freed everything under us;
        abandon any in-progress cycle (its snapshot is meaningless)."""
        self.cycle_open = False
        self.gray_stack.clear()

    def describe(self) -> str:
        budget = (
            "unbounded"
            if self.slice_budget is None
            else f"{self.slice_budget}w"
        )
        return (
            f"incremental tri-color mark-sweep, heap "
            f"{self.space.capacity} words, slice budget {budget}, "
            f"trigger {self.trigger_fraction}"
        )
