"""Work accounting shared by all collectors.

The paper's primary cost metric is the *mark/cons ratio*: "the number
of objects that have been marked (or copied, or whatever) divided by
the number of objects that have been allocated" (Section 3).  We track
it in words.  Secondary costs the paper discusses — sweeping, tracing
the root set and remembered set, write-barrier traffic — are tracked
separately so experiments can report them (Section 6 lists them as
costs the analysis omits).

All quantities are in words of simulated work; there is no wall-clock
anywhere in the accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["GcStats", "PauseRecord"]


@dataclass(frozen=True)
class PauseRecord:
    """One collection event.

    Attributes:
        clock: heap allocation clock (words) when the collection ran.
        kind: collector-specific label ("full", "minor", "promote",
            "non-predictive", ...).
        work: words of tracing/copying work done by this collection.
        reclaimed: words of garbage reclaimed.
        live: words found live in the collected region.
    """

    clock: int
    kind: str
    work: int
    reclaimed: int
    live: int


@dataclass
class GcStats:
    """Cumulative work counters for one collector instance."""

    #: Words allocated through the collector.
    words_allocated: int = 0
    #: Allocation events.
    objects_allocated: int = 0
    #: Words of live objects marked in place (mark/sweep-style).
    words_marked: int = 0
    #: Words of live objects copied/moved (copying-style).
    words_copied: int = 0
    #: Words examined by sweeping (mark/sweep only).
    words_swept: int = 0
    #: Words of garbage reclaimed across all collections.
    words_reclaimed: int = 0
    #: Root-set and remembered-set entries traced.
    roots_traced: int = 0
    #: Remembered-set entries created (all sets combined).
    remset_entries_created: int = 0
    #: Remembered-set entries pruned as stale during tracing (§8.4).
    remset_entries_pruned: int = 0
    #: Words promoted between generations.
    words_promoted: int = 0
    #: Collection counts.
    collections: int = 0
    minor_collections: int = 0
    major_collections: int = 0
    #: Per-collection records, oldest first.
    pauses: list[PauseRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Derived measures
    # ------------------------------------------------------------------

    @property
    def words_traced(self) -> int:
        """Marked plus copied: the numerator of the mark/cons ratio."""
        return self.words_marked + self.words_copied

    @property
    def mark_cons(self) -> float:
        """The paper's mark/cons ratio (0 when nothing allocated yet)."""
        if self.words_allocated == 0:
            return 0.0
        return self.words_traced / self.words_allocated

    @property
    def gc_work(self) -> int:
        """Total collector work: tracing, sweeping, and root scanning.

        This is the simulator's stand-in for "gc time" in Table 3;
        dividing by allocation gives a machine-independent analogue of
        the paper's (gc time)/(mutator time) column.
        """
        return self.words_traced + self.words_swept + self.roots_traced

    def gc_mutator_ratio(self, mutator_work: int | None = None) -> float:
        """GC work divided by mutator work.

        The mutator work defaults to words allocated, the simulator's
        proxy for mutator time (the paper's benchmarks are
        allocation-bound, which is why it selected them).
        """
        denominator = (
            self.words_allocated if mutator_work is None else mutator_work
        )
        if denominator <= 0:
            return 0.0
        return self.gc_work / denominator

    @property
    def max_pause_work(self) -> int:
        """Largest single-collection work (a pause-time analogue)."""
        if not self.pauses:
            return 0
        return max(record.work for record in self.pauses)

    def record_pause(
        self, clock: int, kind: str, work: int, reclaimed: int, live: int
    ) -> None:
        self.pauses.append(
            PauseRecord(
                clock=clock, kind=kind, work=work, reclaimed=reclaimed, live=live
            )
        )

    def snapshot(self) -> dict[str, int]:
        """All cumulative integer counters, as a plain dict.

        The metrics plane diffs consecutive snapshots to attribute
        work to individual collections; the key set is stable so the
        diff is always total.
        """
        return {
            "words_allocated": self.words_allocated,
            "objects_allocated": self.objects_allocated,
            "words_marked": self.words_marked,
            "words_copied": self.words_copied,
            "words_swept": self.words_swept,
            "words_reclaimed": self.words_reclaimed,
            "roots_traced": self.roots_traced,
            "remset_entries_created": self.remset_entries_created,
            "remset_entries_pruned": self.remset_entries_pruned,
            "words_promoted": self.words_promoted,
            "collections": self.collections,
            "minor_collections": self.minor_collections,
            "major_collections": self.major_collections,
        }

    def export_state(self) -> dict:
        """Every counter plus the full pause log, JSON-serializable."""
        state: dict = self.snapshot()
        state["pauses"] = [
            [pause.clock, pause.kind, pause.work, pause.reclaimed, pause.live]
            for pause in self.pauses
        ]
        return state

    def import_state(self, state: dict) -> None:
        """Replace every counter and the pause log with a snapshot's."""
        for key in self.snapshot():
            setattr(self, key, state[key])
        self.pauses = [
            PauseRecord(
                clock=clock, kind=kind, work=work, reclaimed=reclaimed, live=live
            )
            for clock, kind, work, reclaimed, live in state["pauses"]
        ]

    def components(self) -> dict[str, int]:
        """The mark/cons work decomposition (words, cumulative).

        ``mark + copy`` is the mark/cons numerator; ``sweep`` and
        ``root`` are the secondary costs Section 6 lists as omitted
        from the paper's analysis but tracked here.
        """
        return {
            "mark": self.words_marked,
            "copy": self.words_copied,
            "sweep": self.words_swept,
            "root": self.roots_traced,
        }

    def summary(self) -> dict[str, float]:
        """A flat dict of headline numbers, for tables and CLI output."""
        return {
            "words_allocated": self.words_allocated,
            "objects_allocated": self.objects_allocated,
            "words_marked": self.words_marked,
            "words_copied": self.words_copied,
            "words_swept": self.words_swept,
            "words_reclaimed": self.words_reclaimed,
            "roots_traced": self.roots_traced,
            "collections": self.collections,
            "minor_collections": self.minor_collections,
            "major_collections": self.major_collections,
            "mark_cons": self.mark_cons,
            "gc_mutator_ratio": self.gc_mutator_ratio(),
            "max_pause_work": self.max_pause_work,
        }
