"""Larceny's hybrid design (Section 8): ephemeral area + non-predictive heap.

The hybrid collector reproduces the prototype the paper describes for
Larceny: a conventional stop-and-copy *ephemeral area* (the nursery)
in which all allocation occurs, feeding a *non-predictive* step-
structured dynamic area that manages the long-lived objects.

Collections come in two flavors:

* **promoting (ephemeral) collection** — when the nursery fills, its
  live objects are traced (rooted in the machine roots plus the
  remembered set of dynamic-area slots that point into the nursery)
  and *all* of them are promoted into the non-predictive heap.
  Because everything live leaves the ephemeral area, §8.4's situations
  1 and 2 never arise.  Larceny decides *before* the collection
  whether the promotion targets steps j+1..k (the normal case) or
  steps 1..j; it never splits a promotion across the boundary.  When a
  promotion into j+1..k spills below the boundary, ``j`` is decreased
  afterwards — the "flexibility to decrease j" the paper relies on.
  A promotion into steps 1..j scans each promoted object for pointers
  into steps j+1..k and records them (situation 5).
* **non-predictive collection** — when the dynamic area cannot accept
  a promotion, steps j+1..k are collected together with the ephemeral
  area (a non-predictive collection "always promotes all live objects
  out of the ephemeral area into the non-predictive heap"), the steps
  are renumbered exactly as in
  :class:`~repro.gc.nonpredictive.NonPredictiveCollector`, and a new
  ``j`` is chosen by the tuning policy.

Section 8.3's remembered-set pressure valve is implemented: the
ephemeral collection counts pointers from surviving nursery objects
into the non-predictive heap (the paper notes the ephemeral collector
"must recognize those pointers anyway") and, if promoting under the
current ``j`` would push the steps remembered set past ``max_remset``,
``j`` is reduced before the objects are promoted.
"""

from __future__ import annotations

from repro.core.policy import HalfEmptyPolicy, StepSnapshot, TuningPolicy
from repro.gc.collector import Collector, HeapExhausted
from repro.heap.heap import SimulatedHeap
from repro.heap.object_model import HeapObject
from repro.heap.remset import RememberedSet
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["HybridCollector"]


class HybridCollector(Collector):
    """Ephemeral stop-and-copy nursery over a non-predictive old area.

    Args:
        heap: the simulated heap.
        roots: the machine root set.
        nursery_words: capacity of the ephemeral area.
        step_count: ``k``, number of steps in the non-predictive area.
        step_words: capacity of each step.
        policy: tuning policy choosing ``j`` after each non-predictive
            collection (defaults to the paper's §8.1 rule).
        initial_j: ``j`` before the first non-predictive collection.
        max_remset: §8.3 pressure valve — reduce ``j`` before a
            promotion that would grow the steps remembered set past
            this size (``None`` disables the valve).
        allow_promotion_into_protected: permit promotions that target
            steps 1..j when steps j+1..k lack room (exercises §8.4's
            situation 5).  When false the collector prefers a
            non-predictive collection instead.
    """

    name = "hybrid-non-predictive"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        nursery_words: int,
        step_count: int,
        step_words: int,
        *,
        policy: TuningPolicy | None = None,
        initial_j: int = 0,
        max_remset: int | None = None,
        allow_promotion_into_protected: bool = True,
    ) -> None:
        super().__init__(heap, roots)
        if nursery_words <= 0:
            raise ValueError(
                f"nursery size must be positive, got {nursery_words!r}"
            )
        if step_count < 2:
            raise ValueError(f"need at least 2 steps, got {step_count!r}")
        if step_words <= 0:
            raise ValueError(f"step size must be positive, got {step_words!r}")
        if not 0 <= initial_j <= step_count // 2:
            raise ValueError(
                f"initial j must be in [0, {step_count // 2}], got {initial_j!r}"
            )
        self.nursery = heap.add_space("hybrid-nursery", nursery_words)
        self.steps: list[Space] = [
            heap.add_space(f"hybrid-step-{index}", step_words)
            for index in range(step_count)
        ]
        self.step_words = step_words
        self.policy = policy if policy is not None else HalfEmptyPolicy()
        self._j = 0
        self.j = initial_j
        self.max_remset = max_remset
        self.allow_promotion_into_protected = allow_promotion_into_protected
        #: Dynamic-area slots that may point into the nursery (§8.4
        #: situation 3; conventional old-to-young remembering).
        self.remset_young = RememberedSet("hybrid-young")
        #: Protected-step slots that may point into collectable steps
        #: (§8.4 situations 5 and 6).
        self.remset_steps = RememberedSet("hybrid-steps")
        # Step lookup keyed by space identity (hit on every barrier
        # store); rebuilt only when the steps are renumbered.
        self._step_index_of: dict[Space, int] = {
            space: index for index, space in enumerate(self.steps)
        }

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def step_count(self) -> int:
        return len(self.steps)

    @property
    def j(self) -> int:
        """The tuning parameter: steps 1..j are protected."""
        return self._j

    @j.setter
    def j(self, value: int) -> None:
        self._j = value
        self._refresh_partition()

    def _refresh_partition(self) -> None:
        """Rebuild the cached protected/collectable split; invalidated
        whenever ``j`` changes or the steps are renumbered."""
        j = self._j
        self._protected_list = self.steps[:j]
        self._collectable_list = self.steps[j:]
        self._protected_set = set(self._protected_list)

    def step_number(self, obj: HeapObject) -> int | None:
        space = obj.space
        if space is None:
            return None
        index = self._step_index_of.get(space)
        return None if index is None else index + 1

    def in_nursery(self, obj: HeapObject) -> bool:
        return obj.space is self.nursery

    def managed_spaces(self) -> frozenset[Space]:
        return frozenset((self.nursery, *self.steps))

    def step_used(self) -> list[int]:
        return [space.used for space in self.steps]

    def _dynamic_free(self) -> int:
        return sum(space.free for space in self.steps)

    def _protected_free(self) -> int:
        return sum(space.free for space in self._protected_list)

    def _collectable_free(self) -> int:
        return sum(space.free for space in self._collectable_list)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(
        self, size: int, field_count: int = 0, kind: str = "data"
    ) -> HeapObject:
        # Hot path: hoist the nursery attribute and inline Space.fits /
        # _record_allocation.
        nursery = self.nursery
        capacity = nursery.capacity
        if size > (capacity or 0):
            raise ValueError(
                f"object of {size} words exceeds the nursery size "
                f"{capacity}"
            )
        if capacity is not None and nursery.used + size > capacity:
            self.collect_nursery()
            if (
                nursery.capacity is not None
                and nursery.used + size > nursery.capacity
            ):
                # Emergency full collection: condemn the dynamic area
                # as well before reporting exhaustion.
                self.collect()
                if (
                    nursery.capacity is not None
                    and nursery.used + size > nursery.capacity
                ):
                    raise HeapExhausted(self, size)
        obj = self.heap.allocate(size, field_count, nursery, kind)
        stats = self.stats
        stats.words_allocated += size
        stats.objects_allocated += 1
        return obj

    # ------------------------------------------------------------------
    # Write barrier
    # ------------------------------------------------------------------

    def remember_store(
        self, obj: HeapObject, slot: int, target: HeapObject
    ) -> None:
        src_space = obj.space
        if src_space is None:
            return
        index_of = self._step_index_of
        src = index_of.get(src_space)
        if src is None:
            return  # nursery (or unmanaged) sources are always traced
        if target.space is self.nursery:
            # Situation 3: dynamic-area object now points at the nursery.
            self.remset_young.record_barrier(obj.obj_id, slot)
            self.stats.remset_entries_created += 1
            return
        dst_space = target.space
        dst = None if dst_space is None else index_of.get(dst_space)
        # 0-based equivalent of "src <= j < dst" on 1-based step numbers.
        if dst is not None and src < self._j <= dst:
            # Situation 6: protected step points into a collectable step.
            self.remset_steps.record_barrier(obj.obj_id, slot)
            self.stats.remset_entries_created += 1

    # ------------------------------------------------------------------
    # Tuning
    # ------------------------------------------------------------------

    def reduce_j(self, new_j: int) -> None:
        """Decrease ``j`` mid-cycle, rescanning for newly exposed pointers.

        See :meth:`repro.gc.nonpredictive.NonPredictiveCollector.reduce_j`
        for why the rescan is required.
        """
        if new_j > self.j:
            raise ValueError(
                f"j can only be decreased between collections "
                f"(current {self.j}, requested {new_j})"
            )
        if new_j < 0:
            raise ValueError(f"j must be non-negative, got {new_j!r}")
        if new_j < self.j:
            for space in self.steps[:new_j]:
                for obj in space.objects():
                    for slot, ref in enumerate(obj.fields):
                        if type(ref) is not int:
                            continue
                        dst = self.step_number(self.heap.get(ref))
                        if dst is not None and dst > new_j:
                            self.remset_steps.record_barrier(obj.obj_id, slot)
                            self.stats.remset_entries_created += 1
        self.j = new_j

    def _snapshot(self, projected_growth: int = 0) -> StepSnapshot:
        return StepSnapshot(
            step_used=self.step_used(),
            step_capacity=[self.step_words] * self.step_count,
            remset_size=len(self.remset_steps),
            projected_remset_growth=projected_growth,
        )

    # ------------------------------------------------------------------
    # Ephemeral (promoting) collection
    # ------------------------------------------------------------------

    def collect_nursery(self) -> None:
        """Trace the nursery and promote every live object out of it.

        Runs a full non-predictive collection instead when the dynamic
        area cannot be guaranteed to absorb the promotion.
        """
        if self._dynamic_free() < self.nursery.used:
            # Not enough headroom for the worst case; collect the old
            # area (which also empties the nursery) instead.
            self.collect()
            return

        heap = self.heap
        region = {self.nursery}
        used_before = self.nursery.used
        if self.metrics is not None:
            self.metrics.event(
                "collection-start", kind="promote", clock=heap.clock
            )

        seeds = self._root_ids()
        seeds.extend(self._young_remset_seeds())
        marked = self._trace_region(region, seeds, count_work=False)

        objects = heap._objects
        index_of = self._step_index_of
        nursery_objects = self.nursery._objects
        survivors: list[HeapObject] = []
        dead: list[HeapObject] = []
        outbound_pointers = 0
        for obj in nursery_objects.values():
            if obj.obj_id in marked:
                survivors.append(obj)
                # §8.3: count pointers leaving the ephemeral area; the
                # collector must recognize them anyway, and the count
                # estimates the remembered-set growth of the promotion.
                for ref in obj.fields:
                    if type(ref) is int and objects[ref].space in index_of:
                        outbound_pointers += 1
            else:
                dead.append(obj)
        reclaimed = 0
        for obj in dead:
            reclaimed += obj.size
            del objects[obj.obj_id]
            del nursery_objects[obj.obj_id]
            obj.space = None
        self.nursery.used -= reclaimed

        survivor_words = sum(obj.size for obj in survivors)

        # §8.3 pressure valve: shrink j before promoting if the
        # remembered set would grow unacceptably.
        if self.max_remset is not None and self.j > 0:
            projected = len(self.remset_steps) + outbound_pointers
            if projected > self.max_remset:
                scale = self.max_remset / projected
                self.reduce_j(int(self.j * scale))

        # Decide the promotion target region before moving anything;
        # a promotion never straddles the j boundary by *decision*,
        # only by spill (which then lowers j).
        into_protected = False
        if survivor_words > self._collectable_free():
            if (
                self.allow_promotion_into_protected
                and survivor_words <= self._protected_free()
            ):
                into_protected = True
            elif survivor_words > self._dynamic_free():
                raise HeapExhausted(self, survivor_words, phase="promotion")

        if into_protected:
            self._promote_into_protected(survivors)
        else:
            self._promote_into_collectable(survivors)

        self.stats.words_copied += survivor_words
        self.stats.words_promoted += survivor_words
        if self.metrics is not None and survivor_words:
            self.metrics.event(
                "promotion",
                target="steps" if not into_protected else "protected-steps",
                words=survivor_words,
                objects=len(survivors),
            )

        # A remembered dynamic-to-nursery slot whose source is protected
        # and whose target was just promoted past the j boundary is now
        # a protected-to-collectable pointer (the promotion-entered case
        # of §8.4); migrate it to the steps remembered set before the
        # nursery entries are discarded.  (j may have been reduced by
        # the valve or a spill above, so reread it.)
        j = self._j
        for obj_id, slot in list(self.remset_young.entries()):
            src = objects.get(obj_id)
            if src is None:
                continue
            src_space = src.space
            src_index = None if src_space is None else index_of.get(src_space)
            if src_index is None or src_index >= j:
                continue
            if slot >= len(src.fields):
                continue
            ref = src.fields[slot]
            if type(ref) is not int:
                continue
            target = objects.get(ref)
            if target is None or target.space is None:
                continue
            dst_index = index_of.get(target.space)
            if dst_index is not None and dst_index >= j:
                self.remset_steps.record_promotion(obj_id, slot)
                self.stats.remset_entries_created += 1

        # The nursery is empty, so no dynamic-to-nursery pointers exist.
        self.remset_young.clear()

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.minor_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="promote",
            work=survivor_words,
            reclaimed=reclaimed,
            live=survivor_words,
        )
        self._finish_collection()

    def _promote_into_collectable(self, survivors: list[HeapObject]) -> None:
        """Pack survivors into the highest-numbered free steps.

        If packing spills below the j boundary, ``j`` is decreased so
        the spilled steps become collectable (the promoted objects are
        then *not* in the protected generation, and no situation-5
        entries are needed for them).
        """
        heap = self.heap
        cursor = self.step_count - 1
        lowest = self.step_count
        for obj in survivors:
            index = self._place(obj, cursor)
            cursor = index
            if index < lowest:
                lowest = index
        if survivors and lowest < self.j:
            # Spill below the boundary: decrease j. reduce_j rescans
            # steps 1..new_j, conservatively restoring the remset
            # invariant for pointers into the newly collectable steps.
            self.reduce_j(lowest)

    def _promote_into_protected(self, survivors: list[HeapObject]) -> None:
        """Pack survivors into steps 1..j, recording situation-5 entries."""
        cursor = self.j - 1
        for obj in survivors:
            cursor = self._place(obj, cursor)
        # Scan the promoted objects for pointers into steps j+1..k
        # (§8.4: detected "when the object is traced, after it has been
        # copied into the non-predictive heap").
        for obj in survivors:
            for slot, ref in enumerate(obj.fields):
                if type(ref) is not int:
                    continue
                dst = self.step_number(self.heap.get(ref))
                if dst is not None and dst > self.j:
                    self.remset_steps.record_promotion(obj.obj_id, slot)
                    self.stats.remset_entries_created += 1

    def _place(self, obj: HeapObject, cursor: int) -> int:
        """Move one object into the highest free step at or below cursor."""
        index = cursor
        while index >= 0 and not self.steps[index].fits(obj.size):
            index -= 1
        if index < 0:
            # Sliver fragmentation; fall back to first fit anywhere.
            for alt in range(self.step_count - 1, -1, -1):
                if self.steps[alt].fits(obj.size):
                    index = alt
                    break
            else:
                raise HeapExhausted(self, obj.size, phase="promotion")
        self.heap.move(obj, self.steps[index])
        return index

    def _young_remset_seeds(self) -> list[int]:
        """Seeds from dynamic-area slots that still point into the nursery."""
        seeds: list[int] = []
        objects = self.heap._objects
        nursery = self.nursery
        for obj_id, slot in list(self.remset_young.entries()):
            self.stats.roots_traced += 1
            obj = objects.get(obj_id)
            if obj is None or slot >= len(obj.fields):
                continue
            ref = obj.fields[slot]
            if type(ref) is not int:
                continue
            target = objects.get(ref)
            if target is not None and target.space is nursery:
                seeds.append(ref)
        return seeds

    # ------------------------------------------------------------------
    # Non-predictive collection
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Collect steps j+1..k together with the ephemeral area."""
        heap = self.heap
        objects = heap._objects
        k = self.step_count
        protected = self._protected_list
        collectable = self._collectable_list
        region = set(collectable)
        region.add(self.nursery)
        if self.metrics is not None:
            self.metrics.event(
                "collection-start",
                kind="non-predictive",
                clock=heap.clock,
                j=self._j,
                collectable_steps=len(collectable),
            )

        seeds = self._root_ids()
        seeds.extend(self._steps_remset_seeds(region))
        marked = self._trace_region(region, seeds, count_work=False)

        survivors: list[HeapObject] = []
        reclaimed = 0
        for space in [self.nursery, *collectable]:
            space_objects = space._objects
            for obj in space_objects.values():
                if obj.obj_id in marked:
                    obj.space = None
                    survivors.append(obj)
                else:
                    reclaimed += obj.size
                    del objects[obj.obj_id]
                    obj.space = None
            space_objects.clear()
            space.used = 0

        survivor_words = sum(obj.size for obj in survivors)
        free_after = sum(space.free for space in self.steps)
        if survivor_words > free_after:
            raise HeapExhausted(self, survivor_words, phase="collection")

        # Renumber: old j+1..k become 1..k-j, old 1..j become k-j+1..k.
        steps = collectable + protected
        if self.metrics is not None:
            self.metrics.event(
                "renumbering", order=[space.name for space in steps]
            )
        self.steps = steps
        self._step_index_of = {
            space: index for index, space in enumerate(steps)
        }
        self._refresh_partition()

        # Survivors go "to the highest-numbered step that contains free
        # space" — which after renumbering may be an old protected step
        # with room left (the nursery's survivors can exceed the
        # collectable capacity they came from).  Steps are bounded, so
        # the inlined placement checks capacity directly.
        cursor = k - 1
        live = 0
        for obj in survivors:
            size = obj.size
            index = cursor
            while index >= 0:
                space = steps[index]
                if space.used + size <= space.capacity:
                    break
                index -= 1
            if index < 0:
                raise HeapExhausted(self, size, phase="collection")
            space._objects[obj.obj_id] = obj
            space.used += size
            obj.space = space
            cursor = index
            live += size
        self.stats.words_copied += live

        # Protected steps are empty after renumbering + policy choice,
        # the nursery is empty, so both remembered sets start afresh.
        self.remset_steps.clear()
        self.remset_young.clear()

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.major_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="non-predictive",
            work=live,
            reclaimed=reclaimed,
            live=live,
        )
        self.j = self.policy.choose_j(self._snapshot())
        self._finish_collection()

    def on_static_promotion(self) -> None:
        self.remset_steps.clear()
        self.remset_young.clear()
        self.j = self.policy.choose_j(self._snapshot())

    def _steps_remset_seeds(self, region: set[Space]) -> list[int]:
        """Seeds from protected-step slots pointing into the region.

        Both remembered sets can contribute: ``remset_steps`` holds
        protected-to-collectable pointers, and ``remset_young`` may
        hold protected-step slots pointing into the nursery (which is
        part of the region for a non-predictive collection).
        """
        seeds: list[int] = []
        objects = self.heap._objects
        protected = self._protected_set
        for remset in (self.remset_steps, self.remset_young):
            for obj_id, slot in list(remset.entries()):
                self.stats.roots_traced += 1
                obj = objects.get(obj_id)
                if obj is None or obj.space not in protected:
                    continue
                if slot >= len(obj.fields):
                    continue
                ref = obj.fields[slot]
                if type(ref) is not int:
                    continue
                target = objects.get(ref)
                if target is not None and target.space in region:
                    seeds.append(ref)
        return seeds

    # ------------------------------------------------------------------
    # Invariants (used by the heap auditor)
    # ------------------------------------------------------------------

    def check_step_invariants(self) -> None:
        """Raise AssertionError if the step structure is inconsistent."""
        assert len(self.steps) == len(self._step_index_of)
        for index, space in enumerate(self.steps):
            assert self._step_index_of[space] == index
            assert space.capacity == self.step_words
            assert 0 <= space.used <= self.step_words
        assert 0 <= self.j <= self.step_count
        assert self._protected_list == self.steps[: self.j]
        assert self._collectable_list == self.steps[self.j:]

    def describe(self) -> str:
        return (
            f"hybrid (nursery {self.nursery.capacity} words + "
            f"{self.step_count} steps x {self.step_words} words, j={self.j})"
        )
