"""Larceny's hybrid design (Section 8): ephemeral area + non-predictive heap.

The hybrid collector reproduces the prototype the paper describes for
Larceny: a conventional stop-and-copy *ephemeral area* (the nursery)
in which all allocation occurs, feeding a *non-predictive* step-
structured dynamic area that manages the long-lived objects.

Collections come in two flavors:

* **promoting (ephemeral) collection** — when the nursery fills, its
  live objects are traced (rooted in the machine roots plus the
  remembered set of dynamic-area slots that point into the nursery)
  and *all* of them are promoted into the non-predictive heap.
  Because everything live leaves the ephemeral area, §8.4's situations
  1 and 2 never arise.  Larceny decides *before* the collection
  whether the promotion targets steps j+1..k (the normal case) or
  steps 1..j; it never splits a promotion across the boundary.  When a
  promotion into j+1..k spills below the boundary, ``j`` is decreased
  afterwards — the "flexibility to decrease j" the paper relies on.
  A promotion into steps 1..j scans each promoted object for pointers
  into steps j+1..k and records them (situation 5).
* **non-predictive collection** — when the dynamic area cannot accept
  a promotion, steps j+1..k are collected together with the ephemeral
  area (a non-predictive collection "always promotes all live objects
  out of the ephemeral area into the non-predictive heap"), the steps
  are renumbered exactly as in
  :class:`~repro.gc.nonpredictive.NonPredictiveCollector`, and a new
  ``j`` is chosen by the tuning policy.

Section 8.3's remembered-set pressure valve is implemented: the
ephemeral collection counts pointers from surviving nursery objects
into the non-predictive heap (the paper notes the ephemeral collector
"must recognize those pointers anyway") and, if promoting under the
current ``j`` would push the steps remembered set past ``max_remset``,
``j`` is reduced before the objects are promoted.
"""

from __future__ import annotations

from repro.core.policy import HalfEmptyPolicy, StepSnapshot, TuningPolicy
from repro.gc.collector import Collector, HeapExhausted
from repro.heap.heap import SimulatedHeap
from repro.heap.object_model import HeapObject
from repro.heap.remset import RememberedSet
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["HybridCollector"]


class HybridCollector(Collector):
    """Ephemeral stop-and-copy nursery over a non-predictive old area.

    Args:
        heap: the simulated heap.
        roots: the machine root set.
        nursery_words: capacity of the ephemeral area.
        step_count: ``k``, number of steps in the non-predictive area.
        step_words: capacity of each step.
        policy: tuning policy choosing ``j`` after each non-predictive
            collection (defaults to the paper's §8.1 rule).
        initial_j: ``j`` before the first non-predictive collection.
        max_remset: §8.3 pressure valve — reduce ``j`` before a
            promotion that would grow the steps remembered set past
            this size (``None`` disables the valve).
        allow_promotion_into_protected: permit promotions that target
            steps 1..j when steps j+1..k lack room (exercises §8.4's
            situation 5).  When false the collector prefers a
            non-predictive collection instead.
    """

    name = "hybrid-non-predictive"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        nursery_words: int,
        step_count: int,
        step_words: int,
        *,
        policy: TuningPolicy | None = None,
        initial_j: int = 0,
        max_remset: int | None = None,
        allow_promotion_into_protected: bool = True,
    ) -> None:
        super().__init__(heap, roots)
        if nursery_words <= 0:
            raise ValueError(
                f"nursery size must be positive, got {nursery_words!r}"
            )
        if step_count < 2:
            raise ValueError(f"need at least 2 steps, got {step_count!r}")
        if step_words <= 0:
            raise ValueError(f"step size must be positive, got {step_words!r}")
        if not 0 <= initial_j <= step_count // 2:
            raise ValueError(
                f"initial j must be in [0, {step_count // 2}], got {initial_j!r}"
            )
        self.nursery = heap.add_space("hybrid-nursery", nursery_words)
        self.steps: list[Space] = [
            heap.add_space(f"hybrid-step-{index}", step_words)
            for index in range(step_count)
        ]
        self.step_words = step_words
        self.policy = policy if policy is not None else HalfEmptyPolicy()
        self._j = 0
        self.j = initial_j
        self.max_remset = max_remset
        self.allow_promotion_into_protected = allow_promotion_into_protected
        #: Dynamic-area slots that may point into the nursery (§8.4
        #: situation 3; conventional old-to-young remembering).
        self.remset_young = RememberedSet("hybrid-young")
        #: Protected-step slots that may point into collectable steps
        #: (§8.4 situations 5 and 6).
        self.remset_steps = RememberedSet("hybrid-steps")
        # Step lookup keyed by space identity (hit on every barrier
        # store); rebuilt only when the steps are renumbered.
        self._step_index_of: dict[Space, int] = {
            space: index for index, space in enumerate(self.steps)
        }

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def step_count(self) -> int:
        return len(self.steps)

    @property
    def j(self) -> int:
        """The tuning parameter: steps 1..j are protected."""
        return self._j

    @j.setter
    def j(self, value: int) -> None:
        self._j = value
        self._refresh_partition()

    def _refresh_partition(self) -> None:
        """Rebuild the cached protected/collectable split; invalidated
        whenever ``j`` changes or the steps are renumbered."""
        j = self._j
        self._protected_list = self.steps[:j]
        self._collectable_list = self.steps[j:]
        self._protected_set = set(self._protected_list)

    def step_number(self, obj: HeapObject) -> int | None:
        space = obj.space
        if space is None:
            return None
        index = self._step_index_of.get(space)
        return None if index is None else index + 1

    def in_nursery(self, obj: HeapObject) -> bool:
        return obj.space is self.nursery

    def managed_spaces(self) -> frozenset[Space]:
        return frozenset((self.nursery, *self.steps))

    def step_used(self) -> list[int]:
        return [space.used for space in self.steps]

    def export_state(self) -> dict:
        # Renumbering reorders ``steps`` without renaming the spaces,
        # so the logical order is recoverable from the name list alone.
        return {
            "nursery_capacity": self.nursery.capacity,
            "step_order": [space.name for space in self.steps],
            "step_words": self.step_words,
            "j": self._j,
            "max_remset": self.max_remset,
            "allow_promotion_into_protected": (
                self.allow_promotion_into_protected
            ),
            "remset_young": self.remset_young.export_state(),
            "remset_steps": self.remset_steps.export_state(),
        }

    def import_state(self, state: dict) -> None:
        if sorted(state["step_order"]) != sorted(
            space.name for space in self.steps
        ):
            raise ValueError(
                f"snapshot steps {state['step_order']} do not match "
                f"collector steps {[s.name for s in self.steps]}"
            )
        self.nursery.capacity = state["nursery_capacity"]
        heap_space = self.heap.space
        self.steps = [heap_space(name) for name in state["step_order"]]
        self._step_index_of = {
            space: index for index, space in enumerate(self.steps)
        }
        self.step_words = state["step_words"]
        self.max_remset = state["max_remset"]
        self.allow_promotion_into_protected = state[
            "allow_promotion_into_protected"
        ]
        self.remset_young.import_state(state["remset_young"])
        self.remset_steps.import_state(state["remset_steps"])
        # Through the setter: rebuilds the partition caches over the
        # restored order.
        self.j = state["j"]

    def _dynamic_free(self) -> int:
        return sum(space.free for space in self.steps)

    def _protected_free(self) -> int:
        return sum(space.free for space in self._protected_list)

    def _collectable_free(self) -> int:
        return sum(space.free for space in self._collectable_list)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _reserve(self, size: int) -> Space:
        # Hot path: hoist the nursery attribute and inline Space.fits.
        nursery = self.nursery
        capacity = nursery.capacity
        if size > (capacity or 0):
            raise ValueError(
                f"object of {size} words exceeds the nursery size "
                f"{capacity}"
            )
        if capacity is not None and nursery.used + size > capacity:
            self.collect_nursery()
            if (
                nursery.capacity is not None
                and nursery.used + size > nursery.capacity
            ):
                # Emergency full collection: condemn the dynamic area
                # as well before reporting exhaustion.
                self.collect()
                if (
                    nursery.capacity is not None
                    and nursery.used + size > nursery.capacity
                ):
                    raise HeapExhausted(self, size)
        return nursery

    # ------------------------------------------------------------------
    # Write barrier
    # ------------------------------------------------------------------

    def remember_store(
        self, obj: HeapObject, slot: int, target: HeapObject | None
    ) -> None:
        if target is None:
            return
        src_space = obj.space
        if src_space is None:
            return
        index_of = self._step_index_of
        src = index_of.get(src_space)
        if src is None:
            return  # nursery (or unmanaged) sources are always traced
        if target.space is self.nursery:
            # Situation 3: dynamic-area object now points at the nursery.
            self.remset_young.record_barrier(obj.obj_id, slot)
            self.stats.remset_entries_created += 1
            return
        dst_space = target.space
        dst = None if dst_space is None else index_of.get(dst_space)
        # 0-based equivalent of "src <= j < dst" on 1-based step numbers.
        if dst is not None and src < self._j <= dst:
            # Situation 6: protected step points into a collectable step.
            self.remset_steps.record_barrier(obj.obj_id, slot)
            self.stats.remset_entries_created += 1

    # ------------------------------------------------------------------
    # Tuning
    # ------------------------------------------------------------------

    def reduce_j(self, new_j: int) -> None:
        """Decrease ``j`` mid-cycle, rescanning for newly exposed pointers.

        See :meth:`repro.gc.nonpredictive.NonPredictiveCollector.reduce_j`
        for why the rescan is required.
        """
        if new_j > self.j:
            raise ValueError(
                f"j can only be decreased between collections "
                f"(current {self.j}, requested {new_j})"
            )
        if new_j < 0:
            raise ValueError(f"j must be non-negative, got {new_j!r}")
        if new_j < self.j:
            heap = self.heap
            for space in self.steps[:new_j]:
                for obj_id in list(space.object_ids()):
                    for slot, ref in heap.ref_slots(obj_id):
                        dst = self.step_number(heap.get(ref))
                        if dst is not None and dst > new_j:
                            self.remset_steps.record_barrier(obj_id, slot)
                            self.stats.remset_entries_created += 1
        self.j = new_j

    def _snapshot(self, projected_growth: int = 0) -> StepSnapshot:
        return StepSnapshot(
            step_used=self.step_used(),
            step_capacity=[self.step_words] * self.step_count,
            remset_size=len(self.remset_steps),
            projected_remset_growth=projected_growth,
        )

    # ------------------------------------------------------------------
    # Ephemeral (promoting) collection
    # ------------------------------------------------------------------

    def collect_nursery(self) -> None:
        """Trace the nursery and promote every live object out of it.

        Runs a full non-predictive collection instead when the dynamic
        area cannot be guaranteed to absorb the promotion.
        """
        if self._dynamic_free() < self.nursery.used:
            # Not enough headroom for the worst case; collect the old
            # area (which also empties the nursery) instead.
            self.collect()
            return

        heap = self.heap
        region = {self.nursery}
        if self.metrics is not None:
            self.metrics.event(
                "collection-start", kind="promote", clock=heap.clock
            )

        seeds = self._root_ids()
        seeds.extend(self._young_remset_seeds())
        marked = self._trace_region(region, seeds, count_work=False)

        index_of = self._step_index_of
        survivors, reclaimed = heap.partition_space(self.nursery, marked)
        # §8.3: count pointers leaving the ephemeral area; the
        # collector must recognize them anyway, and the count
        # estimates the remembered-set growth of the promotion.
        outbound_pointers = heap.count_slot_refs_into(
            survivors, set(index_of)
        )

        size_of = heap.size_of
        survivor_sizes = [size_of(oid) for oid in survivors]
        survivor_words = sum(survivor_sizes)

        # §8.3 pressure valve: shrink j before promoting if the
        # remembered set would grow unacceptably.
        if self.max_remset is not None and self.j > 0:
            projected = len(self.remset_steps) + outbound_pointers
            if projected > self.max_remset:
                scale = self.max_remset / projected
                self.reduce_j(int(self.j * scale))

        # Decide the promotion target region before moving anything;
        # a promotion never straddles the j boundary by *decision*,
        # only by spill (which then lowers j).
        into_protected = False
        if survivor_words > self._collectable_free():
            if (
                self.allow_promotion_into_protected
                and survivor_words <= self._protected_free()
            ):
                into_protected = True
            elif survivor_words > self._dynamic_free():
                raise HeapExhausted(self, survivor_words, phase="promotion")

        promoted = list(zip(survivors, survivor_sizes))
        if into_protected:
            self._promote_into_protected(promoted)
        else:
            self._promote_into_collectable(promoted)

        self.stats.words_copied += survivor_words
        self.stats.words_promoted += survivor_words
        if self.metrics is not None and survivor_words:
            self.metrics.event(
                "promotion",
                target="steps" if not into_protected else "protected-steps",
                words=survivor_words,
                objects=len(survivors),
            )

        # A remembered dynamic-to-nursery slot whose source is protected
        # and whose target was just promoted past the j boundary is now
        # a protected-to-collectable pointer (the promotion-entered case
        # of §8.4); migrate it to the steps remembered set before the
        # nursery entries are discarded.  (j may have been reduced by
        # the valve or a spill above, so reread it.)
        j = self._j
        for obj_id, slot in list(self.remset_young.entries()):
            probe = heap.slot_ref(obj_id, slot)
            if probe is None:
                continue
            src_index = index_of.get(probe[0])
            if src_index is None or src_index >= j:
                continue
            target_space = heap.space_if_live(probe[1])
            if target_space is None:
                continue
            dst_index = index_of.get(target_space)
            if dst_index is not None and dst_index >= j:
                self.remset_steps.record_promotion(obj_id, slot)
                self.stats.remset_entries_created += 1

        # The nursery is empty, so no dynamic-to-nursery pointers exist.
        self.remset_young.clear()

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.minor_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="promote",
            work=survivor_words,
            reclaimed=reclaimed,
            live=survivor_words,
        )
        self._finish_collection()

    def _promote_into_collectable(
        self, promoted: list[tuple[int, int]]
    ) -> None:
        """Pack survivors into the highest-numbered free steps.

        If packing spills below the j boundary, ``j`` is decreased so
        the spilled steps become collectable (the promoted objects are
        then *not* in the protected generation, and no situation-5
        entries are needed for them).
        """
        lowest = self._place_all(promoted, self.step_count - 1)
        if promoted and lowest < self.j:
            # Spill below the boundary: decrease j. reduce_j rescans
            # steps 1..new_j, conservatively restoring the remset
            # invariant for pointers into the newly collectable steps.
            self.reduce_j(lowest)

    def _promote_into_protected(
        self, promoted: list[tuple[int, int]]
    ) -> None:
        """Pack survivors into steps 1..j, recording situation-5 entries."""
        heap = self.heap
        self._place_all(promoted, self.j - 1)
        # Scan the promoted objects for pointers into steps j+1..k
        # (§8.4: detected "when the object is traced, after it has been
        # copied into the non-predictive heap").
        for oid, _ in promoted:
            for slot, ref in heap.ref_slots(oid):
                dst = self.step_number(heap.get(ref))
                if dst is not None and dst > self.j:
                    self.remset_steps.record_promotion(oid, slot)
                    self.stats.remset_entries_created += 1

    def _place_all(
        self, promoted: list[tuple[int, int]], cursor: int
    ) -> int:
        """Pack survivors step-wise: each into the highest free step at
        or below the moving cursor, falling back to first fit from the
        top on sliver fragmentation.

        Placement decisions are per object, but contiguous runs landing
        in the same step move in one ``move_ids`` call; queued-but-not-
        yet-moved words are charged against that step's room so the
        decisions match one-move-per-object exactly.  Returns the
        lowest step index used (``step_count`` when nothing moved).
        """
        steps = self.steps
        move = self.heap.move_ids
        lowest = self.step_count
        batch: list[int] = []
        append = batch.append
        batch_index = -1
        unbounded = 1 << 62
        # Words still free in the batch step after everything queued;
        # the common case — next survivor lands in the same step —
        # is then a single compare.
        room = 0

        def step_room(index: int) -> int:
            if index == batch_index:
                return room
            step = steps[index]
            capacity = step.capacity
            if capacity is None:
                return unbounded
            return capacity - step.used

        for oid, size in promoted:
            if size <= room:
                append(oid)
                room -= size
                continue
            index = cursor
            while index >= 0 and step_room(index) < size:
                index -= 1
            if index < 0:
                # Sliver fragmentation; fall back to first fit anywhere.
                for alt in range(self.step_count - 1, -1, -1):
                    if step_room(alt) >= size:
                        index = alt
                        break
                else:
                    if batch:
                        move(batch, steps[batch_index])
                    raise HeapExhausted(self, size, phase="promotion")
            if index != batch_index:
                if batch:
                    move(batch, steps[batch_index])
                    batch = []
                    append = batch.append
                batch_index = index
                step = steps[index]
                capacity = step.capacity
                room = unbounded if capacity is None else capacity - step.used
            append(oid)
            room -= size
            cursor = index
            if index < lowest:
                lowest = index
        if batch:
            move(batch, steps[batch_index])
        return lowest

    def _young_remset_seeds(self) -> list[int]:
        """Seeds from dynamic-area slots that still point into the nursery."""
        seeds: list[int] = []
        heap = self.heap
        nursery = self.nursery
        for obj_id, slot in list(self.remset_young.entries()):
            self.stats.roots_traced += 1
            probe = heap.slot_ref(obj_id, slot)
            if probe is None:
                continue
            ref = probe[1]
            if heap.space_if_live(ref) is nursery:
                seeds.append(ref)
        return seeds

    # ------------------------------------------------------------------
    # Non-predictive collection
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Collect steps j+1..k together with the ephemeral area."""
        heap = self.heap
        k = self.step_count
        protected = self._protected_list
        collectable = self._collectable_list
        region = set(collectable)
        region.add(self.nursery)
        if self.metrics is not None:
            self.metrics.event(
                "collection-start",
                kind="non-predictive",
                clock=heap.clock,
                j=self._j,
                collectable_steps=len(collectable),
            )

        seeds = self._root_ids()
        seeds.extend(self._steps_remset_seeds(region))
        marked = self._trace_region(region, seeds, count_work=False)

        survivors: list[int] = []
        reclaimed = 0
        for space in [self.nursery, *collectable]:
            space_survivors, space_reclaimed = heap.extract_live(
                space, marked
            )
            survivors.extend(space_survivors)
            reclaimed += space_reclaimed

        size_of = heap.size_of
        survivor_words = sum(size_of(oid) for oid in survivors)
        free_after = sum(space.free for space in self.steps)
        if survivor_words > free_after:
            raise HeapExhausted(self, survivor_words, phase="collection")

        # Renumber: old j+1..k become 1..k-j, old 1..j become k-j+1..k.
        steps = collectable + protected
        if self.metrics is not None:
            self.metrics.event(
                "renumbering", order=[space.name for space in steps]
            )
        self.steps = steps
        self._step_index_of = {
            space: index for index, space in enumerate(steps)
        }
        self._refresh_partition()

        # Survivors go "to the highest-numbered step that contains free
        # space" — which after renumbering may be an old protected step
        # with room left (the nursery's survivors can exceed the
        # collectable capacity they came from).  Steps are bounded, so
        # the inlined placement checks capacity directly.
        cursor = k - 1
        live = 0
        place = heap.place_id
        for oid in survivors:
            size = size_of(oid)
            index = cursor
            while index >= 0:
                space = steps[index]
                if space.used + size <= space.capacity:
                    break
                index -= 1
            if index < 0:
                raise HeapExhausted(self, size, phase="collection")
            place(oid, space, size)
            cursor = index
            live += size
        self.stats.words_copied += live

        # Protected steps are empty after renumbering + policy choice,
        # the nursery is empty, so both remembered sets start afresh.
        self.remset_steps.clear()
        self.remset_young.clear()

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.major_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="non-predictive",
            work=live,
            reclaimed=reclaimed,
            live=live,
        )
        self.j = self.policy.choose_j(self._snapshot())
        self._finish_collection()

    def on_static_promotion(self) -> None:
        self.remset_steps.clear()
        self.remset_young.clear()
        self.j = self.policy.choose_j(self._snapshot())

    def _steps_remset_seeds(self, region: set[Space]) -> list[int]:
        """Seeds from protected-step slots pointing into the region.

        Both remembered sets can contribute: ``remset_steps`` holds
        protected-to-collectable pointers, and ``remset_young`` may
        hold protected-step slots pointing into the nursery (which is
        part of the region for a non-predictive collection).
        """
        seeds: list[int] = []
        heap = self.heap
        protected = self._protected_set
        for remset in (self.remset_steps, self.remset_young):
            for obj_id, slot in list(remset.entries()):
                self.stats.roots_traced += 1
                probe = heap.slot_ref(obj_id, slot)
                if probe is None or probe[0] not in protected:
                    continue
                ref = probe[1]
                if heap.space_if_live(ref) in region:
                    seeds.append(ref)
        return seeds

    # ------------------------------------------------------------------
    # Invariants (used by the heap auditor)
    # ------------------------------------------------------------------

    def check_step_invariants(self) -> None:
        """Raise AssertionError if the step structure is inconsistent."""
        assert len(self.steps) == len(self._step_index_of)
        for index, space in enumerate(self.steps):
            assert self._step_index_of[space] == index
            assert space.capacity == self.step_words
            assert 0 <= space.used <= self.step_words
        assert 0 <= self.j <= self.step_count
        assert self._protected_list == self.steps[: self.j]
        assert self._collectable_list == self.steps[self.j:]

    def describe(self) -> str:
        return (
            f"hybrid (nursery {self.nursery.capacity} words + "
            f"{self.step_count} steps x {self.step_words} words, j={self.j})"
        )
