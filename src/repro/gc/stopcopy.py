"""Non-generational semispace stop-and-copy collection (Cheney scan).

This is Larceny's baseline collector in Table 3: the heap is two
semispaces; allocation fills the active one; when it is full, every
object reachable from the roots is copied to the other semispace in
breadth-first (Cheney) order and the roles flip.  Collection work is
proportional to *live* storage only — dead objects are abandoned, never
touched — which is the property that makes stop-and-copy attractive for
young generations (Section 7).

The simulator "copies" by moving objects between spaces; object ids
are stable, so there are no forwarding pointers to chase, but the scan
order and the work accounting (one copy per live object, one scan per
copied word) follow Cheney's algorithm exactly.
"""

from __future__ import annotations

from repro.gc.collector import Collector, HeapExhausted
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["StopAndCopyCollector"]


class StopAndCopyCollector(Collector):
    """A classic two-semispace stop-and-copy collector.

    Args:
        heap: the simulated heap (the collector registers two spaces).
        roots: the machine root set.
        semispace_words: capacity of each semispace in words.  The
            paper's "semiheap size" column of Table 3 is this quantity.
        auto_expand: grow both semispaces when, after a collection,
            live storage exceeds ``semispace capacity / load_factor``.
        load_factor: target ratio of semispace size to live storage
            when auto-expanding.  Larceny's stop-and-copy collector
            sized its semiheaps this way for Table 3.
        max_semispace_words: optional hard cap on each semispace's
            expansion; when growth hits the cap an unsatisfiable
            allocation raises a structured
            :class:`~repro.gc.collector.HeapExhausted`.
    """

    name = "stop-and-copy"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        semispace_words: int,
        *,
        auto_expand: bool = True,
        load_factor: float = 2.0,
        max_semispace_words: int | None = None,
    ) -> None:
        super().__init__(heap, roots)
        if semispace_words <= 0:
            raise ValueError(
                f"semispace size must be positive, got {semispace_words!r}"
            )
        if load_factor <= 1.0:
            raise ValueError(f"load factor must exceed 1, got {load_factor!r}")
        if (
            max_semispace_words is not None
            and max_semispace_words < semispace_words
        ):
            raise ValueError(
                f"expansion cap {max_semispace_words} is below the "
                f"initial semispace size {semispace_words}"
            )
        self.max_semispace_words = max_semispace_words
        self._semispaces = (
            heap.add_space("sc-semispace-A", semispace_words),
            heap.add_space("sc-semispace-B", semispace_words),
        )
        self._active = 0
        self.auto_expand = auto_expand
        self.load_factor = load_factor
        #: Semispace size high-water mark, for Table 3's semiheap column.
        self.peak_semispace_words = semispace_words

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def tospace(self) -> Space:
        """The active semispace (where allocation happens)."""
        return self._semispaces[self._active]

    @property
    def fromspace(self) -> Space:
        """The idle semispace (empty between collections)."""
        return self._semispaces[1 - self._active]

    @property
    def semispace_words(self) -> int:
        return self.tospace.capacity or 0

    def managed_spaces(self) -> frozenset:
        return frozenset(self._semispaces)

    def export_state(self) -> dict:
        return {
            "semispace_capacity": self._semispaces[0].capacity,
            "active": self._active,
            "auto_expand": self.auto_expand,
            "load_factor": self.load_factor,
            "max_semispace_words": self.max_semispace_words,
            "peak_semispace_words": self.peak_semispace_words,
        }

    def import_state(self, state: dict) -> None:
        for space in self._semispaces:
            space.capacity = state["semispace_capacity"]
        self._active = state["active"]
        self.auto_expand = state["auto_expand"]
        self.load_factor = state["load_factor"]
        self.max_semispace_words = state["max_semispace_words"]
        self.peak_semispace_words = state["peak_semispace_words"]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _reserve(self, size: int) -> Space:
        # Hot path: hoist the tospace property and inline Space.fits.
        # collect() flips the semispaces and _expand() grows them, so
        # tospace is re-read after either.
        tospace = self._semispaces[self._active]
        capacity = tospace.capacity
        if capacity is not None and tospace.used + size > capacity:
            self.collect()
            tospace = self._semispaces[self._active]
            capacity = tospace.capacity
            if capacity is not None and tospace.used + size > capacity:
                # Post-collection policy: bounded expansion, then a
                # structured failure with occupancy diagnostics.
                if self.auto_expand:
                    self._expand(size)
                    tospace = self._semispaces[self._active]
                capacity = tospace.capacity
                if capacity is not None and tospace.used + size > capacity:
                    raise HeapExhausted(self, size)
        return tospace

    def _expand(self, pending: int) -> None:
        needed = self.tospace.used + pending
        target = max(
            int(needed * self.load_factor), self.tospace.capacity or 0
        )
        if self.max_semispace_words is not None:
            target = min(target, self.max_semispace_words)
        if target > (self.tospace.capacity or 0):
            self._set_semispace_capacity(target)

    def _set_semispace_capacity(self, words: int) -> None:
        if self.metrics is not None:
            self.metrics.event(
                "heap-expansion",
                space=self.tospace.name,
                old_capacity=self.tospace.capacity or 0,
                new_capacity=words,
            )
        for space in self._semispaces:
            space.capacity = words
        if words > self.peak_semispace_words:
            self.peak_semispace_words = words

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Flip semispaces, Cheney-copying the live objects."""
        if self.metrics is not None:
            self.metrics.event(
                "collection-start", kind="full", clock=self.heap.clock
            )
        heap = self.heap
        old_from, old_to = self.fromspace, self.tospace
        used_before = old_to.used

        # Cheney scan: copy roots, then scan copied objects in FIFO
        # order, copying anything they reference that is still in
        # fromspace.  "Copying" is a move between spaces; ids persist.
        # The destination always fits (equal semispaces, live <= used),
        # so the kernel bypasses the heap's capacity-checked slow path.
        # Everything left behind is unreachable and abandoned.
        work, reclaimed = heap.cheney_evacuate(
            old_to, old_from, self._root_ids()
        )
        self.stats.words_copied += work

        self._active = 1 - self._active
        live = used_before - reclaimed
        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.major_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="full",
            work=work,
            reclaimed=reclaimed,
            live=live,
        )
        if self.auto_expand:
            minimum = int(live * self.load_factor)
            if self.max_semispace_words is not None:
                minimum = min(minimum, self.max_semispace_words)
            if (self.tospace.capacity or 0) < minimum:
                self._set_semispace_capacity(minimum)
        self._finish_collection()

    def describe(self) -> str:
        return (
            f"stop-and-copy, semispaces of {self.semispace_words} words"
        )
