"""Non-generational semispace stop-and-copy collection (Cheney scan).

This is Larceny's baseline collector in Table 3: the heap is two
semispaces; allocation fills the active one; when it is full, every
object reachable from the roots is copied to the other semispace in
breadth-first (Cheney) order and the roles flip.  Collection work is
proportional to *live* storage only — dead objects are abandoned, never
touched — which is the property that makes stop-and-copy attractive for
young generations (Section 7).

The simulator "copies" by moving objects between spaces; object ids
are stable, so there are no forwarding pointers to chase, but the scan
order and the work accounting (one copy per live object, one scan per
copied word) follow Cheney's algorithm exactly.
"""

from __future__ import annotations

from collections import deque

from repro.gc.collector import Collector, HeapExhausted
from repro.heap.heap import SimulatedHeap
from repro.heap.object_model import HeapObject
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["StopAndCopyCollector"]


class StopAndCopyCollector(Collector):
    """A classic two-semispace stop-and-copy collector.

    Args:
        heap: the simulated heap (the collector registers two spaces).
        roots: the machine root set.
        semispace_words: capacity of each semispace in words.  The
            paper's "semiheap size" column of Table 3 is this quantity.
        auto_expand: grow both semispaces when, after a collection,
            live storage exceeds ``semispace capacity / load_factor``.
        load_factor: target ratio of semispace size to live storage
            when auto-expanding.  Larceny's stop-and-copy collector
            sized its semiheaps this way for Table 3.
    """

    name = "stop-and-copy"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        semispace_words: int,
        *,
        auto_expand: bool = True,
        load_factor: float = 2.0,
    ) -> None:
        super().__init__(heap, roots)
        if semispace_words <= 0:
            raise ValueError(
                f"semispace size must be positive, got {semispace_words!r}"
            )
        if load_factor <= 1.0:
            raise ValueError(f"load factor must exceed 1, got {load_factor!r}")
        self._semispaces = (
            heap.add_space("sc-semispace-A", semispace_words),
            heap.add_space("sc-semispace-B", semispace_words),
        )
        self._active = 0
        self.auto_expand = auto_expand
        self.load_factor = load_factor
        #: Semispace size high-water mark, for Table 3's semiheap column.
        self.peak_semispace_words = semispace_words

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def tospace(self) -> Space:
        """The active semispace (where allocation happens)."""
        return self._semispaces[self._active]

    @property
    def fromspace(self) -> Space:
        """The idle semispace (empty between collections)."""
        return self._semispaces[1 - self._active]

    @property
    def semispace_words(self) -> int:
        return self.tospace.capacity or 0

    def managed_spaces(self) -> frozenset:
        return frozenset(self._semispaces)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(
        self, size: int, field_count: int = 0, kind: str = "data"
    ) -> HeapObject:
        if not self.tospace.fits(size):
            self.collect()
            if not self.tospace.fits(size):
                if self.auto_expand:
                    self._expand(size)
                else:
                    raise HeapExhausted(self, size)
        obj = self.heap.allocate(size, field_count, self.tospace, kind)
        self._record_allocation(obj)
        return obj

    def _expand(self, pending: int) -> None:
        needed = self.tospace.used + pending
        target = max(
            int(needed * self.load_factor), self.tospace.capacity or 0
        )
        self._set_semispace_capacity(target)

    def _set_semispace_capacity(self, words: int) -> None:
        for space in self._semispaces:
            space.capacity = words
        if words > self.peak_semispace_words:
            self.peak_semispace_words = words

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Flip semispaces, Cheney-copying the live objects."""
        heap = self.heap
        old_from, old_to = self.fromspace, self.tospace
        used_before = old_to.used

        # Cheney scan: copy roots, then scan copied objects in FIFO
        # order, copying anything they reference that is still in
        # fromspace.  "Copying" is a move between spaces; ids persist.
        copied: set[int] = set()
        scan_queue: deque[int] = deque()
        work = 0

        def evacuate(obj_id: int) -> None:
            nonlocal work
            if obj_id in copied:
                return
            obj = heap.get(obj_id)
            if obj.space is not old_to:
                return  # already outside the condemned region
            heap.move(obj, old_from)
            copied.add(obj_id)
            scan_queue.append(obj_id)
            work += obj.size

        for obj_id in self._root_ids():
            evacuate(obj_id)
        while scan_queue:
            obj = heap.get(scan_queue.popleft())
            for ref in obj.references():
                evacuate(ref)

        self.stats.words_copied += work

        # Everything left in the old tospace is unreachable: abandon it.
        reclaimed = 0
        for obj in list(old_to.objects()):
            reclaimed += obj.size
            heap.free(obj)

        self._active = 1 - self._active
        live = used_before - reclaimed
        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.major_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="full",
            work=work,
            reclaimed=reclaimed,
            live=live,
        )
        if self.auto_expand:
            minimum = int(live * self.load_factor)
            if (self.tospace.capacity or 0) < minimum:
                self._set_semispace_capacity(minimum)
        self._finish_collection()

    def describe(self) -> str:
        return (
            f"stop-and-copy, semispaces of {self.semispace_words} words"
        )
