"""Concurrent marking: the incremental wavefront, off the mutator.

The incremental collector bounded pauses by slicing the mark loop, but
every slice still runs on the mutator's critical path.  This collector
moves the whole mark phase into a worker process:

* **Cycle open (handoff)**: begin a mark epoch exactly like the
  incremental collector, snapshot the roots plus the heap's
  reachability-relevant state (:meth:`export_mark_snapshot` on either
  backend — the flat backend ships its packed ``array('q')`` arenas as
  raw bytes, one memcpy per arena; the object backend pickles a plain
  dict), and hand it to :func:`_mark_snapshot_task`.  With
  ``marker_workers == 0`` the task runs inline at the handoff — the
  deterministic reference mode every oracle uses; with workers it is
  submitted to a lazily created :class:`ProcessPoolExecutor` reusing
  the hardened machinery of :mod:`repro.perf.parallel` (env-tunable
  timeout, attempt-salted retries via ``derive_seed(seed, cycle,
  attempt)``, worker-crash recovery, inline serial fallback).
* **While the marker runs** the mutator proceeds untouched: allocation
  is allocate-black via the birth clock (nothing born after the epoch
  is ever scanned), and the SATB deletion barrier grays overwritten
  pre-epoch referents onto ``gray_stack`` exactly as the incremental
  collector does.  Allocation safepoints merely poll the marker future
  (overlap telemetry only — polls are observably free).
* **Reconciliation (cycle close)**: drain the marker's reachable set
  ``R``, then re-mark from the SATB log and the current roots until
  quiescent, treating every id in ``R`` as already black.  Because
  mutator reachability between mutations only shrinks relative to the
  snapshot, every SATB entry and every pre-epoch root is already in
  ``R`` on a clean run — the reconcile scan does zero words of work —
  and the survivor set ``R ∪ non-white ∪ born-in-epoch`` is exactly
  what the incremental collector computes for the same script.  Every
  ``GcStats`` counter is therefore identical to incremental's at any
  slice budget (the oracle of :mod:`repro.verify.concurrent`); only
  the pause *log* differs: the mutator sees a ``handoff`` and a
  ``reconcile`` pause instead of mark slices, with the mark work
  itself priced off-thread.

Pause accounting stays in words (the repo-wide currency): the handoff
is 0 words of mark work (arena memcpy is not mark work, and the flat
export is O(arena bytes) precisely so it stays off the words ledger),
and the reconcile pause carries only the words the reconcile scan
itself marked — 0 on clean runs, which is the mutator-visible win the
SLO report gates.
"""

from __future__ import annotations

from repro.gc.incremental import BLACK, GRAY, WHITE, IncrementalCollector
from repro.heap.heap import HeapError, SimulatedHeap
from repro.heap.roots import RootSet

__all__ = ["ConcurrentCollector", "WedgedMarkerError"]

#: Placeholder payload installed when a snapshot restores a collector
#: whose marker was in flight: the marker's *result* is rehydrated from
#: the snapshot, so the payload only needs to make ``marker_inflight``
#: true — it is never traced again.
_RESTORED_PAYLOAD = ("restored-marker",)


class WedgedMarkerError(RuntimeError):
    """The marker retry ladder exhausted without producing a result.

    Raised by ``_drain_pending`` only while the watchdog holds a
    cycle-open checkpoint; ``collect`` catches it, rolls the collector
    back, and degrades to inline marking.  Escaping to other callers
    (``export_state``, ``pending_marked_ids``) means the wedged cycle
    cannot be serialized or audited mid-flight, which is the honest
    answer.
    """


def _trace_flat_snapshot(snapshot: dict, roots: list[int]) -> tuple[set[int], int]:
    """Mark a flat-backend snapshot: the ``trace_region`` kernel over
    rehydrated arenas, with non-resident roots skipped silently (the
    cycle-open contract) and dangling *references* raised."""
    from array import array

    from repro.heap.flat import (
        _DEAD,
        _DETACHED,
        _FC_MASK,
        _FC_SHIFT,
        _SIZE_MASK,
        _TOKEN_MASK,
    )

    hdr = array("q")
    hdr.frombytes(snapshot["hdr"])
    state = array("q")
    state.frombytes(snapshot["state"])
    sbase = array("q")
    sbase.frombytes(snapshot["slot_base"])
    refs = array("q")
    refs.frombytes(snapshot["refs"])
    token = snapshot["token"]
    n = len(state)
    marked: set[int] = set()
    mark = marked.add
    stack: list[int] = []
    push = stack.append
    pop = stack.pop
    words = 0
    for oid in roots:
        if oid not in marked and 0 <= oid < n:
            packed = state[oid]
            if (
                packed != _DEAD
                and packed != _DETACHED
                and packed & _TOKEN_MASK == token
            ):
                mark(oid)
                push(oid)
    while stack:
        oid = pop()
        header = hdr[oid]
        words += header & _SIZE_MASK
        count = (header >> _FC_SHIFT) & _FC_MASK
        if count:
            base = sbase[oid]
            for ref in refs[base:base + count]:
                if ref >= 0 and ref not in marked:
                    if ref >= n:
                        raise HeapError(f"dangling object id {ref}")
                    packed = state[ref]
                    if packed == _DEAD:
                        raise HeapError(f"dangling object id {ref}")
                    if (
                        packed != _DETACHED
                        and packed & _TOKEN_MASK == token
                    ):
                        mark(ref)
                        push(ref)
    return marked, words


def _trace_object_snapshot(
    snapshot: dict, roots: list[int]
) -> tuple[set[int], int]:
    """Mark an object-backend snapshot (the pickle fallback): residents
    are ``oid -> (size, refs)``; a reference outside the space but in
    ``known`` is a boundary (skip), anything else dangles (raise)."""
    objects = snapshot["objects"]
    known = snapshot["known"]
    marked: set[int] = set()
    mark = marked.add
    stack: list[int] = []
    push = stack.append
    pop = stack.pop
    words = 0
    for oid in roots:
        if oid not in marked and oid in objects:
            mark(oid)
            push(oid)
    while stack:
        oid = pop()
        size, oid_refs = objects[oid]
        words += size
        for ref in oid_refs:
            if ref not in marked:
                entry = objects.get(ref)
                if entry is None:
                    if ref not in known:
                        raise HeapError(f"dangling object id {ref}")
                    continue
                mark(ref)
                push(ref)
    return marked, words


def _mark_snapshot_task(payload: tuple, attempt: int = 0) -> dict:
    """Worker entry point: trace one heap snapshot to a reachable set.

    ``payload`` is ``(snapshot, base_seed, cycle_index)``.  The root
    order is shuffled by ``derive_seed(base_seed, cycle_index,
    attempt)`` — the attempt salt keeps retried tasks distinct (the
    ``resilient_map`` discipline) while the result stays order-free
    (a set and a word total), so retries are byte-identical.
    Errors travel back as data: a dangling reference inside the
    snapshot is deterministic, so the parent raises it at
    reconciliation instead of burning retries on it.
    """
    import random

    from repro.perf.parallel import derive_seed

    snapshot, base_seed, cycle_index = payload
    roots = list(snapshot["roots"])
    random.Random(derive_seed(base_seed, cycle_index, attempt)).shuffle(roots)
    try:
        if snapshot["backend"] == "flat":
            marked, words = _trace_flat_snapshot(snapshot, roots)
        else:
            marked, words = _trace_object_snapshot(snapshot, roots)
    except HeapError as exc:
        return {"error": str(exc)}
    return {"ids": sorted(marked), "words": words}


class ConcurrentCollector(IncrementalCollector):
    """Tri-color mark/sweep with the mark phase in a worker process.

    Args:
        heap / roots / heap_words: as the incremental collector.
        marker_workers: ``0`` runs the marker inline at the handoff
            (the deterministic reference mode); ``>= 1`` submits it to
            a persistent process pool so marking overlaps the mutator.
        marker_seed: base seed for the marker's traversal-order salt.
        marker_timeout: seconds to wait at reconciliation before
            declaring the worker hung (default: ``REPRO_TASK_TIMEOUT``).
        marker_retries: resubmissions after a timeout/crash before the
            inline fallback runs (default: ``REPRO_TASK_RETRIES``).
        trigger_fraction / auto_expand / load_factor / max_heap_words:
            the incremental collector's policy, unchanged.
    """

    name = "concurrent"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        heap_words: int,
        *,
        marker_workers: int = 0,
        marker_seed: int = 0,
        marker_timeout: float | None = None,
        marker_retries: int | None = None,
        trigger_fraction: float = 0.5,
        auto_expand: bool = True,
        load_factor: float = 2.0,
        max_heap_words: int | None = None,
    ) -> None:
        super().__init__(
            heap,
            roots,
            heap_words,
            slice_budget=None,
            trigger_fraction=trigger_fraction,
            auto_expand=auto_expand,
            load_factor=load_factor,
            max_heap_words=max_heap_words,
        )
        if marker_workers < 0:
            raise ValueError(
                f"marker workers must be >= 0, got {marker_workers!r}"
            )
        self.marker_workers = marker_workers
        self.marker_seed = marker_seed
        self._marker_timeout = marker_timeout
        self._marker_retries = marker_retries
        self._pool = None
        #: Payload of the in-flight marker task (None when quiescent).
        self._payload: tuple | None = None
        self._future = None
        self._attempt = 0
        #: Cached marker result dict once drained (or when inline).
        self._result: dict | None = None
        self._done_early = False
        #: Overlap telemetry (pool mode; wall-clock, so deliberately
        #: *not* part of GcStats, pauses, or events).
        self.marker_cycles = 0
        self.overlapped_cycles = 0
        self.marker_words_total = 0
        self.overlapped_words = 0
        #: Wedged cycles aborted by the watchdog supervisor.
        self.watchdog_aborts = 0
        #: In-memory rollback target captured at each pool-mode cycle
        #: open, just before the epoch begins (a quiescent safepoint).
        self._cycle_checkpoint: dict | None = None

    # ------------------------------------------------------------------
    # Marker lifecycle
    # ------------------------------------------------------------------

    @property
    def marker_inflight(self) -> bool:
        """True while a marker holds a snapshot for the open cycle."""
        return self.cycle_open and self._payload is not None

    def _ensure_pool(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.marker_workers)
        return self._pool

    def _submit_marker(self, snapshot: dict) -> None:
        payload = (snapshot, self.marker_seed, self.cycles_opened)
        self._payload = payload
        self._result = None
        self._attempt = 0
        self._done_early = False
        if self.marker_workers == 0:
            self._result = _mark_snapshot_task(payload)
            self._future = None
        else:
            self._future = self._ensure_pool().submit(
                _mark_snapshot_task, payload, 0
            )

    def _drain_pending(self) -> dict:
        """The marker's result dict, waiting/retrying as needed.

        Timeouts and pool crashes follow the ``resilient_map`` ladder:
        terminate the poisoned pool, resubmit with the attempt salt
        bumped, and after ``marker_retries`` resubmissions run the task
        inline — the serial path is always the reference semantics, so
        a lost worker degrades throughput, never correctness.
        """
        if self._result is not None:
            return self._result
        from concurrent.futures.process import BrokenProcessPool

        from repro.perf.parallel import (
            _terminate_pool,
            task_retries,
            task_timeout,
        )

        timeout = (
            self._marker_timeout
            if self._marker_timeout is not None
            else task_timeout()
        )
        retries = (
            self._marker_retries
            if self._marker_retries is not None
            else task_retries()
        )
        future = self._future
        attempt = self._attempt
        while True:
            if not self._done_early and future.done():
                self._done_early = True
            try:
                result = future.result(timeout=timeout)
                break
            except (TimeoutError, BrokenProcessPool):
                attempt += 1
                pool = self._pool
                self._pool = None
                if pool is not None:
                    _terminate_pool(pool)
                if attempt > retries:
                    if self._cycle_checkpoint is not None:
                        # Deadline exhausted with a rollback target in
                        # hand: the watchdog aborts the cycle instead
                        # of re-marking a heap the wedged worker may
                        # have been poisoned against.
                        self._attempt = attempt
                        raise WedgedMarkerError(
                            f"marker wedged after {attempt} attempts "
                            f"(timeout {timeout}s)"
                        )
                    result = _mark_snapshot_task(self._payload, attempt)
                    break
                future = self._ensure_pool().submit(
                    _mark_snapshot_task, self._payload, attempt
                )
                self._future = future
                self._attempt = attempt
        self._future = None
        self._result = result
        return result

    def _await_marker(self) -> tuple[set[int], int]:
        result = self._drain_pending()
        if "error" in result:
            raise HeapError(
                f"concurrent marker failed: {result['error']}"
            )
        words = result["words"]
        self.marker_cycles += 1
        self.marker_words_total += words
        if self._done_early:
            self.overlapped_cycles += 1
            self.overlapped_words += words
        return set(result["ids"]), words

    def pending_marked_ids(self) -> frozenset[int]:
        """The in-flight marker's reachable set (for the auditor and
        the chaos injectors); blocks in pool mode, empty on error."""
        if not self.marker_inflight:
            return frozenset()
        result = self._drain_pending()
        if "error" in result:
            return frozenset()
        return frozenset(result["ids"])

    def marker_overlap(self) -> float:
        """Fraction of mark work whose worker finished while the
        mutator was still running (0.0 in inline mode)."""
        if not self.marker_words_total:
            return 0.0
        return self.overlapped_words / self.marker_words_total

    def _discard_pending(self) -> None:
        future = self._future
        self._future = None
        self._payload = None
        self._result = None
        self._attempt = 0
        self._done_early = False
        if future is not None:
            future.cancel()

    def close(self) -> None:
        """Release the marker pool (idempotent)."""
        self._discard_pending()
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Watchdog supervisor
    # ------------------------------------------------------------------

    def _watchdog_abort(self, reason: str) -> None:
        """Abort the wedged cycle: kill the pool, roll the collector
        back to the cycle-open checkpoint, and degrade to inline
        marking permanently.

        The rollback is deliberately lossy — allocations made since
        the cycle opened are discarded, exactly the crash-recovery
        semantics a process restore from the same snapshot would give.
        """
        from repro.perf.parallel import _terminate_pool
        from repro.resilience.snapshot import restore_state

        checkpoint = self._cycle_checkpoint
        self._discard_pending()
        pool = self._pool
        self._pool = None
        if pool is not None:
            _terminate_pool(pool)
        restore_state(self, checkpoint)
        self.marker_workers = 0
        self.watchdog_aborts += 1
        if self.metrics is not None:
            self.metrics.event(
                "watchdog-abort",
                clock=self.heap.clock,
                reason=reason,
                aborts=self.watchdog_aborts,
            )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """The incremental state plus the marker plane.

        An in-flight marker is *materialized*: the checkpoint
        synchronizes with the worker (waiting/retrying via the normal
        ladder) and stores its result, so a restored process never
        depends on a worker that died with the original.
        """
        state = super().export_state()
        state["marker_workers"] = self.marker_workers
        state["marker_seed"] = self.marker_seed
        state["marker_cycles"] = self.marker_cycles
        state["overlapped_cycles"] = self.overlapped_cycles
        state["marker_words_total"] = self.marker_words_total
        state["overlapped_words"] = self.overlapped_words
        state["watchdog_aborts"] = self.watchdog_aborts
        state["marker_result"] = (
            dict(self._drain_pending()) if self.marker_inflight else None
        )
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self.marker_workers = state["marker_workers"]
        self.marker_seed = state["marker_seed"]
        self.marker_cycles = state["marker_cycles"]
        self.overlapped_cycles = state["overlapped_cycles"]
        self.marker_words_total = state["marker_words_total"]
        self.overlapped_words = state["overlapped_words"]
        self.watchdog_aborts = state["watchdog_aborts"]
        self._cycle_checkpoint = None
        self._discard_pending()
        result = state["marker_result"]
        if result is not None:
            # Rehydrate the marker as already-drained: reconciliation
            # then proceeds exactly as it would have in the original
            # process.
            self._payload = _RESTORED_PAYLOAD
            if "ids" in result:
                result = {
                    "ids": [int(oid) for oid in result["ids"]],
                    "words": result["words"],
                }
            self._result = result

    # ------------------------------------------------------------------
    # The concurrent cycle
    # ------------------------------------------------------------------

    def _open_cycle(self, kind: str) -> None:
        """Snapshot, hand off to the marker, and record the handoff.

        The inherited allocation ladder opens trigger cycles under the
        incremental collector's kind string; remap it so event streams
        name the collector doing the work.
        """
        if kind == "incremental":
            kind = "concurrent"
        heap = self.heap
        if self.marker_workers > 0:
            # Arm the watchdog: capture the rollback target while the
            # heap is quiescent, before the epoch opens.  Inline mode
            # cannot wedge, so it skips the capture cost entirely.
            from repro.resilience.snapshot import capture_state

            self._cycle_checkpoint = capture_state(self)
        heap.begin_mark_epoch()
        self.epoch_clock = heap.clock
        self.cycle_open = True
        self.cycles_opened += 1
        self.gray_stack.clear()
        root_ids = self._root_ids()
        snapshot = heap.export_mark_snapshot(self.space, root_ids)
        self._submit_marker(snapshot)
        self.stats.record_pause(
            clock=heap.clock,
            kind="handoff",
            work=0,
            reclaimed=0,
            live=self.space.used,
        )
        if self.metrics is not None:
            self.metrics.event(
                "collection-start", kind=kind, clock=heap.clock
            )
            self.metrics.event(
                "handoff",
                clock=heap.clock,
                roots=len(root_ids),
                snapshot_words=self.space.used,
                epoch=self.epoch_clock,
            )
        self._finish_collection()

    def _mark_slice(self) -> None:
        """Allocation safepoints only poll the marker (overlap
        telemetry); they do no mark work and record no pause."""
        future = self._future
        if future is not None and not self._done_early and future.done():
            self._done_early = True

    def reserve_window(self, max_objects: int, size: int = 1) -> tuple[int, int]:
        """Bump windows; with the wavefront off-thread every mid-cycle
        safepoint is a free poll, so an open cycle admits the whole
        window (the incremental base class throttles to one object per
        live-wavefront slice; here that would only repeat the poll).
        The closed-cycle trigger clamp is unchanged."""
        if max_objects <= 0:
            raise ValueError(
                f"window must cover >= 1 object, got {max_objects!r}"
            )
        space = self._reserve(size)
        count = space.free // size
        if count > max_objects:
            count = max_objects
        if not self.cycle_open:
            capacity = space.capacity
            if capacity is not None:
                room = (
                    int(capacity * self.trigger_fraction) - space.used
                ) // size
                if room < count:
                    count = max(1, room)
        first, end = self.heap.bulk_allocate(count, size, space)
        stats = self.stats
        stats.words_allocated += count * size
        stats.objects_allocated += count
        return first, end

    def _reconcile_scan(self, marked_ids: set[int]) -> int:
        """Re-mark from the SATB log and the current roots, treating
        the marker's set as black; returns the words scanned (0 on a
        clean run — every SATB entry and pre-epoch root is already in
        the marker's set, by the shrinking-reachability argument)."""
        heap = self.heap
        space = self.space
        epoch = self.epoch_clock
        gray = self.gray_stack
        for rid in self.roots.ids():
            if (
                rid not in marked_ids
                and heap.space_if_live(rid) is space
                and heap.birth_of(rid) < epoch
                and heap.color_of(rid) == WHITE
            ):
                heap.set_color(rid, GRAY)
                gray.append(rid)
        work = 0
        while gray:
            oid = gray.pop()
            if oid in marked_ids or heap.color_of(oid) != GRAY:
                continue
            heap.set_color(oid, BLACK)
            for _slot, ref in heap.ref_slots(oid):
                ref_space = heap.space_if_live(ref)
                if ref_space is None:
                    if not heap.contains_id(ref):
                        raise HeapError(f"dangling object id {ref}")
                    continue
                if (
                    ref_space is space
                    and ref not in marked_ids
                    and heap.birth_of(ref) < epoch
                    and heap.color_of(ref) == WHITE
                ):
                    heap.set_color(ref, GRAY)
                    gray.append(ref)
            work += heap.size_of(oid)
        return work

    def collect(self) -> None:
        """Reconcile the marker's set with the SATB log and sweep."""
        heap = self.heap
        space = self.space
        if not self.cycle_open:
            self._open_cycle("full")
        try:
            marked_ids, marker_words = self._await_marker()
        except WedgedMarkerError as exc:
            self._watchdog_abort(str(exc))
            # The rolled-back collector marks inline from here on; the
            # re-run opens a fresh cycle over the restored heap.
            self.collect()
            return
        self.stats.words_marked += marker_words
        work = self._reconcile_scan(marked_ids)
        self.stats.words_marked += work

        marked = heap.survivor_ids(space, self.epoch_clock)
        marked |= marked_ids
        self.stats.words_swept += space.used
        reclaimed = heap.free_unmarked(space, marked)
        live = space.used

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.major_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="reconcile",
            work=work,
            reclaimed=reclaimed,
            live=live,
        )
        if self.metrics is not None:
            self.metrics.event(
                "reconcile",
                clock=heap.clock,
                marker_words=marker_words,
                satb_scan_words=work,
                reclaimed=reclaimed,
                live=live,
            )
        self.cycle_open = False
        self.gray_stack.clear()
        self._discard_pending()
        if self.auto_expand:
            minimum = int(live * self.load_factor)
            if self.max_heap_words is not None:
                minimum = min(minimum, self.max_heap_words)
            if (space.capacity or 0) < minimum:
                if self.metrics is not None:
                    self.metrics.event(
                        "heap-expansion",
                        space=space.name,
                        old_capacity=space.capacity or 0,
                        new_capacity=minimum,
                    )
                space.capacity = minimum
        self._finish_collection()

    def on_static_promotion(self) -> None:
        super().on_static_promotion()
        self._discard_pending()

    def describe(self) -> str:
        mode = (
            "inline marker"
            if self.marker_workers == 0
            else f"{self.marker_workers}-worker marker pool"
        )
        return (
            f"concurrent tri-color mark-sweep, heap "
            f"{self.space.capacity} words, {mode}, "
            f"trigger {self.trigger_fraction}"
        )
