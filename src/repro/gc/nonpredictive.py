"""The non-predictive generational collector (Section 4 of the paper).

The collector divides its heap into ``k`` steps of equal size.  Step 1
is the youngest, step ``k`` the oldest.  A tuning parameter ``j``
determines how many of the youngest steps are *protected* from the
next collection: the collector simply assumes everything in steps
1..j is live.

Allocation always occurs in the highest-numbered step that has free
space, so the heap fills from step ``k`` downward.  When every step is
full:

1. steps ``j+1..k`` are collected as a single generation, survivors
   being packed into the highest-numbered steps that have free space;
2. steps ``j+1..k`` are renumbered as the new steps ``1..k-j`` and the
   original steps ``1..j`` become steps ``k-j+1..k``;
3. a new ``j`` is chosen (Section 8.1 recommends one that leaves steps
   1..j empty and satisfies ``j <= k/2``).

The collector never examines object ages and never predicts lifetimes;
its entire policy is *where* free space sits in the step order.  Table
1 of the paper steps through exactly this machinery and the
``table1`` experiment reproduces it with this class.

Root discipline (Sections 8.3/8.6): pointers from protected steps into
collectable steps must be treated as roots.  Two modes are provided:

* ``use_remset=True`` (default) — the write barrier records stores of
  a pointer from a currently protected step into a currently
  collectable step (situation 6 of §8.4).  This is complete because
  after every collection the protected steps are empty (objects can
  only enter them by allocation, whose initializing stores the barrier
  sees), so the remembered set can simply be cleared at the end of
  each collection.  The one hole is mid-cycle *reduction* of ``j``
  (§8.1 allows it at any time): pointers created while both ends were
  protected become protected-to-collectable when the boundary moves,
  so :meth:`reduce_j` rescans the remaining protected steps to restore
  the invariant.
* ``use_remset=False`` — every object in the protected steps is
  scanned as a root (the expensive alternative §8.6 mentions); useful
  as an ablation baseline.
"""

from __future__ import annotations

from repro.core.policy import HalfEmptyPolicy, StepSnapshot, TuningPolicy
from repro.gc.collector import Collector, HeapExhausted
from repro.heap.heap import SimulatedHeap
from repro.heap.object_model import HeapObject
from repro.heap.remset import RememberedSet
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["NonPredictiveCollector"]


class NonPredictiveCollector(Collector):
    """The 2-generation non-predictive step collector of Section 4.

    Args:
        heap: the simulated heap (registers ``step_count`` spaces).
        roots: the machine root set.
        step_count: ``k``, the number of equal-size steps.
        step_words: capacity of each step in words.
        policy: how to choose ``j`` after each collection; defaults to
            the paper's ``j = floor(l/2)`` rule (Section 8.1).
        initial_j: ``j`` to use before the first collection.
        use_remset: trace protected-step roots from the remembered set
            (default) or by scanning the protected steps wholesale.
        algorithm: the basic algorithm used on the collectable steps —
            "stop-and-copy" (the prototype's) packs survivors into the
            highest renumbered steps; "mark-sweep" frees the dead in
            place and compacts only occasionally, the alternative §8
            says the authors intended to add ("a mark/sweep algorithm
            with occasional compaction").
        compaction_threshold: mark-sweep only — compact when fewer
            than this many leading renumbered steps are empty (the
            j-selection rule needs an empty prefix to protect).
    """

    name = "non-predictive"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        step_count: int,
        step_words: int,
        *,
        policy: TuningPolicy | None = None,
        initial_j: int = 0,
        use_remset: bool = True,
        algorithm: str = "stop-and-copy",
        compaction_threshold: int | None = None,
    ) -> None:
        super().__init__(heap, roots)
        if algorithm not in ("stop-and-copy", "mark-sweep"):
            raise ValueError(
                f"algorithm must be 'stop-and-copy' or 'mark-sweep', "
                f"got {algorithm!r}"
            )
        if step_count < 2:
            raise ValueError(f"need at least 2 steps, got {step_count!r}")
        if step_words <= 0:
            raise ValueError(
                f"step size must be positive, got {step_words!r}"
            )
        if not 0 <= initial_j <= step_count // 2:
            raise ValueError(
                f"initial j must be in [0, k/2] = [0, {step_count // 2}], "
                f"got {initial_j!r}"
            )
        #: Steps in logical order: index 0 is step 1 (youngest).
        self.steps: list[Space] = [
            heap.add_space(f"np-step-{index}", step_words)
            for index in range(step_count)
        ]
        self.step_words = step_words
        self.policy = policy if policy is not None else HalfEmptyPolicy()
        self._j = 0
        self.j = initial_j
        self.use_remset = use_remset
        self.algorithm = algorithm
        self.compaction_threshold = (
            max(1, step_count // 4)
            if compaction_threshold is None
            else compaction_threshold
        )
        #: Compactions performed (mark-sweep mode only).
        self.compactions = 0
        self.remset = RememberedSet("np-steps")
        # Allocation proceeds from the highest-numbered step downward;
        # steps above the cursor are closed until the next collection.
        self._alloc_index = step_count - 1
        # Step lookup keyed by space identity: consulted on every
        # barrier store, rebuilt only at renumbering time.  (Keying by
        # name would pay a string hash per store for a map that cannot
        # change between renumberings.)
        self._step_index_of: dict[Space, int] = {
            space: index for index, space in enumerate(self.steps)
        }

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def step_count(self) -> int:
        return len(self.steps)

    @property
    def j(self) -> int:
        """The tuning parameter: steps 1..j are protected."""
        return self._j

    @j.setter
    def j(self, value: int) -> None:
        self._j = value
        self._refresh_partition()

    def _refresh_partition(self) -> None:
        """Rebuild the cached protected/collectable split.

        Invalidated whenever ``j`` changes or the steps are renumbered;
        between those events the partition is immutable, so per-
        collection consumers read the cache instead of re-slicing and
        re-summing the step list.
        """
        j = self._j
        self._protected_list = self.steps[:j]
        self._collectable_list = self.steps[j:]
        self._protected_set = set(self._protected_list)

    def step_number(self, obj: HeapObject) -> int | None:
        """The 1-based step number an object resides in, or None."""
        space = obj.space
        if space is None:
            return None
        index = self._step_index_of.get(space)
        return None if index is None else index + 1

    def step_used(self) -> list[int]:
        """Words used per step, youngest first (Table 1's columns)."""
        return [space.used for space in self.steps]

    def managed_spaces(self) -> frozenset[Space]:
        return frozenset(self.steps)

    def export_state(self) -> dict:
        # Renumbering reorders ``steps`` without renaming the spaces,
        # so the logical order is recoverable from the name list alone.
        return {
            "step_order": [space.name for space in self.steps],
            "step_words": self.step_words,
            "j": self._j,
            "use_remset": self.use_remset,
            "algorithm": self.algorithm,
            "compaction_threshold": self.compaction_threshold,
            "compactions": self.compactions,
            "alloc_index": self._alloc_index,
            "remset": self.remset.export_state(),
        }

    def import_state(self, state: dict) -> None:
        if sorted(state["step_order"]) != sorted(
            space.name for space in self.steps
        ):
            raise ValueError(
                f"snapshot steps {state['step_order']} do not match "
                f"collector steps {[s.name for s in self.steps]}"
            )
        heap_space = self.heap.space
        self.steps = [heap_space(name) for name in state["step_order"]]
        self._step_index_of = {
            space: index for index, space in enumerate(self.steps)
        }
        self.step_words = state["step_words"]
        self.use_remset = state["use_remset"]
        self.algorithm = state["algorithm"]
        self.compaction_threshold = state["compaction_threshold"]
        self.compactions = state["compactions"]
        self._alloc_index = state["alloc_index"]
        self.remset.import_state(state["remset"])
        # Through the setter: rebuilds the partition caches over the
        # restored order.
        self.j = state["j"]

    def protected_spaces(self) -> set[Space]:
        return set(self._protected_list)

    def collectable_spaces(self) -> set[Space]:
        return set(self._collectable_list)

    # ------------------------------------------------------------------
    # Tuning
    # ------------------------------------------------------------------

    def reduce_j(self, new_j: int) -> None:
        """Decrease the tuning parameter mid-cycle (§8.1 allows this).

        Steps ``new_j+1..j`` become collectable, so pointers into them
        from the still-protected steps ``1..new_j`` — invisible to the
        barrier while both ends were protected — are recorded now by
        scanning the remaining protected steps.
        """
        if new_j > self.j:
            raise ValueError(
                f"j can only be decreased between collections "
                f"(current {self.j}, requested {new_j})"
            )
        if new_j < 0:
            raise ValueError(f"j must be non-negative, got {new_j!r}")
        if new_j < self.j and self.use_remset:
            heap = self.heap
            for space in self.steps[:new_j]:
                for obj_id in space.object_ids():
                    for slot, ref in heap.ref_slots(obj_id):
                        dst = self.step_number(heap.get(ref))
                        if dst is not None and dst > new_j:
                            self.remset.record_barrier(obj_id, slot)
                            self.stats.remset_entries_created += 1
        self.j = new_j

    def _snapshot(self, projected_growth: int = 0) -> StepSnapshot:
        return StepSnapshot(
            step_used=self.step_used(),
            step_capacity=[self.step_words] * self.step_count,
            remset_size=len(self.remset),
            projected_remset_growth=projected_growth,
        )

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _reserve(self, size: int) -> Space:
        if size > self.step_words:
            raise ValueError(
                f"object of {size} words exceeds the step size "
                f"{self.step_words}"
            )
        # Hot path: the stop-and-copy bump cursor from _allocation_step,
        # inlined with Space.fits expanded (steps always have a
        # capacity).  The mark-sweep by-number search stays out of line.
        space = None
        if self.algorithm == "mark-sweep":
            space = self._allocation_step(size)
        else:
            steps = self.steps
            alloc_index = self._alloc_index
            while alloc_index >= 0:
                candidate = steps[alloc_index]
                if candidate.used + size <= candidate.capacity:
                    space = candidate
                    break
                alloc_index -= 1
            self._alloc_index = alloc_index
        if space is None:
            self.collect()
            space = self._allocation_step(size)
            if space is None and self.j > 0:
                # Emergency: protect nothing and collect every step —
                # the most memory a non-predictive collection can ever
                # free — before reporting exhaustion.
                self.reduce_j(0)
                self.collect()
                space = self._allocation_step(size)
            if space is None:
                raise HeapExhausted(self, size)
        return space

    def _allocation_step(self, size: int) -> Space | None:
        """The highest-numbered step with room.

        Stop-and-copy mode uses a bump cursor: a step that cannot fit
        the request is closed and its sliver wasted until the next
        collection.  Mark-sweep mode allocates from free lists, so a
        sweep reopens holes anywhere and the search is by number, not
        by cursor.
        """
        if self.algorithm == "mark-sweep":
            for index in range(self.step_count - 1, -1, -1):
                if self.steps[index].fits(size):
                    return self.steps[index]
            return None
        while self._alloc_index >= 0:
            space = self.steps[self._alloc_index]
            if space.fits(size):
                return space
            self._alloc_index -= 1
        return None

    # ------------------------------------------------------------------
    # Write barrier
    # ------------------------------------------------------------------

    def remember_store(
        self, obj: HeapObject, slot: int, target: HeapObject | None
    ) -> None:
        """Remember protected-to-collectable stores (situation 6 of §8.4).

        The paper notes the remembered set "does not have to contain
        objects in steps j+1..k that point into steps 1..j", so only
        stores crossing the boundary in the young-to-old direction are
        recorded.
        """
        if target is None or not self.use_remset:
            return
        index_of = self._step_index_of
        src_space = obj.space
        dst_space = target.space
        if src_space is None or dst_space is None:
            return
        src = index_of.get(src_space)
        dst = index_of.get(dst_space)
        if src is None or dst is None:
            return
        # 0-based equivalent of "src <= j < dst" on 1-based step numbers.
        if src < self.j <= dst:
            self.remset.record_barrier(obj.obj_id, slot)
            self.stats.remset_entries_created += 1

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Collect steps j+1..k, renumber, and choose a new ``j``."""
        heap = self.heap
        j = self.j
        k = self.step_count
        if j >= k:
            raise RuntimeError("tuning parameter j leaves nothing to collect")
        protected = self._protected_list
        collectable = self._collectable_list
        region = set(collectable)
        used_before = sum(space.used for space in region)
        if self.metrics is not None:
            self.metrics.event(
                "collection-start",
                kind="non-predictive",
                clock=heap.clock,
                j=j,
                collectable_steps=len(collectable),
            )

        seeds = self._root_ids()
        if self.use_remset:
            seeds.extend(self._remset_seeds(region))
        else:
            seeds.extend(self._scan_protected(protected, region))

        marked = self._trace_region(region, seeds, count_work=False)

        if self.algorithm == "mark-sweep":
            live, reclaimed = self._sweep_in_place(
                collectable, protected, marked
            )
        else:
            live, reclaimed = self._evacuate_survivors(
                collectable, protected, marked
            )

        # After the collection the (new) protected steps are empty, so
        # no protected-to-collectable pointers exist and the remembered
        # set can be emptied wholesale.
        self.remset.clear()

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.major_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="non-predictive",
            work=live,
            reclaimed=reclaimed,
            live=live,
        )

        self.j = self.policy.choose_j(self._snapshot())
        self._alloc_index = self._highest_free_index()
        self._finish_collection()

    def on_static_promotion(self) -> None:
        self.remset.clear()
        self._alloc_index = self._highest_free_index()
        self.j = self.policy.choose_j(self._snapshot())

    def _evacuate_survivors(
        self,
        collectable: list[Space],
        protected: list[Space],
        marked: set[int],
    ) -> tuple[int, int]:
        """Stop-and-copy survivor phase: detach, renumber, repack."""
        heap = self.heap
        k = self.step_count
        j = len(protected)
        survivors: list[int] = []
        reclaimed = 0
        for space in collectable:
            ids, freed = heap.extract_live(space, marked)
            survivors.extend(ids)
            reclaimed += freed

        # Renumber: old steps j+1..k become 1..k-j; old 1..j become
        # k-j+1..k (they are exchanged, not collected — Table 1's "*").
        self._renumber(collectable + protected)

        # Pack survivors into the highest-numbered renumbered steps
        # with free space (they all fit: survivors occupy at most the
        # collectable capacity they came from).  Steps are always
        # bounded, so the inlined placement checks capacity directly.
        live = 0
        steps = self.steps
        size_of = heap.size_of
        place = heap.place_id
        target_index = k - j - 1
        for oid in survivors:
            size = size_of(oid)
            while target_index >= 0:
                space = steps[target_index]
                if space.used + size <= space.capacity:
                    break
                target_index -= 1
            if target_index >= 0:
                place(oid, space, size)
            else:
                # Bump-pointer slivers can strand a large survivor even
                # though total capacity suffices; fall back to first
                # fit over the renumbered steps.
                for index in range(k - j - 1, -1, -1):
                    space = steps[index]
                    if space.used + size <= space.capacity:
                        place(oid, space, size)
                        break
                else:
                    raise RuntimeError(
                        "survivors overflow the renumbered steps; "
                        "step accounting is corrupt"
                    )
            live += size
        self.stats.words_copied += live
        return live, reclaimed

    def _sweep_in_place(
        self,
        collectable: list[Space],
        protected: list[Space],
        marked: set[int],
    ) -> tuple[int, int]:
        """Mark/sweep survivor phase: free the dead where they lie.

        Marking is charged per live word, sweeping per examined word.
        Survivors stay in their steps; if too few leading renumbered
        steps are empty for the j-selection rule to protect anything,
        an occasional compaction packs survivors toward the highest
        steps (charged as copying).
        """
        heap = self.heap
        live = 0
        reclaimed = 0
        for space in collectable:
            self.stats.words_swept += space.used
            reclaimed += heap.free_unmarked(space, marked)
            live += space.used
            self.stats.words_marked += space.used

        self._renumber(collectable + protected)

        empty = 0
        for space in self.steps:
            if not space.is_empty():
                break
            empty += 1
        if empty < self.compaction_threshold:
            self._compact(len(protected))
        return live, reclaimed

    def _compact(self, j: int) -> None:
        """Empty the leading steps by sliding their survivors upward.

        Only the objects in the first ``compaction_threshold`` steps
        move (into the highest steps with room), so the compaction
        cost is a fraction of the live storage — "occasional
        compaction", not a full slide.
        """
        heap = self.heap
        size_of = heap.size_of
        place = heap.place_id
        k = self.step_count
        prefix = min(self.compaction_threshold, k - j)
        movers: list[int] = []
        for space in self.steps[:prefix]:
            movers.extend(heap.extract_all(space))
        if not movers:
            return
        target_index = k - j - 1
        for position, oid in enumerate(movers):
            size = size_of(oid)
            while (
                target_index >= prefix
                and not self.steps[target_index].fits(size)
            ):
                target_index -= 1
            if target_index < prefix:
                # No room above: put the stragglers back (first fit in
                # the prefix) and stop; the empty prefix is simply
                # shorter this cycle.
                for straggler in movers[position:]:
                    straggler_size = size_of(straggler)
                    for space in self.steps[:prefix]:
                        if space.fits(straggler_size):
                            place(straggler, space, straggler_size)
                            break
                    else:
                        raise RuntimeError(
                            "compaction overflow; step accounting is "
                            "corrupt"
                        )
                break
            place(oid, self.steps[target_index], size)
            self.stats.words_copied += size
        self.compactions += 1

    def _renumber(self, new_order: list[Space]) -> None:
        if self.metrics is not None:
            self.metrics.event(
                "renumbering", order=[space.name for space in new_order]
            )
        self.steps = new_order
        self._step_index_of = {
            space: index for index, space in enumerate(new_order)
        }
        self._refresh_partition()

    def _highest_free_index(self) -> int:
        for index in range(self.step_count - 1, -1, -1):
            if self.steps[index].free > 0:
                return index
        return -1

    def _remset_seeds(self, region: set[Space]) -> list[int]:
        """Seed ids from remembered slots pointing into the region.

        Only entries whose source currently resides in a *protected*
        step contribute; entries between two collectable steps are
        redundant (the trace reaches their targets if live) and are
        skipped.
        """
        seeds: list[int] = []
        heap = self.heap
        slot_ref = heap.slot_ref
        space_if_live = heap.space_if_live
        protected = self._protected_set
        for obj_id, slot in list(self.remset.entries()):
            self.stats.roots_traced += 1
            probe = slot_ref(obj_id, slot)
            if probe is None or probe[0] not in protected:
                continue
            ref = probe[1]
            if space_if_live(ref) in region:
                seeds.append(ref)
        return seeds

    def _scan_protected(
        self, protected: list[Space], region: set[Space]
    ) -> list[int]:
        """Scan every protected object for pointers into the region."""
        seeds: list[int] = []
        for space in protected:
            for obj in space.objects():
                self.stats.roots_traced += obj.size
                for ref in obj.references():
                    if self.heap.get(ref).space in region:
                        seeds.append(ref)
        return seeds

    # ------------------------------------------------------------------
    # Invariants (used by tests)
    # ------------------------------------------------------------------

    def check_step_invariants(self) -> None:
        """Raise AssertionError if the step structure is inconsistent."""
        assert len(self.steps) == len(self._step_index_of)
        for index, space in enumerate(self.steps):
            assert self._step_index_of[space] == index
            assert space.capacity == self.step_words
            assert 0 <= space.used <= self.step_words
        assert 0 <= self.j <= self.step_count // 2

    def describe(self) -> str:
        return (
            f"non-predictive ({self.step_count} steps x {self.step_words} "
            f"words, j={self.j})"
        )
