"""A conventional generational collector (Section 3, Section 7.1).

This is the reproduction of Larceny's "conventional multi-generation
collector that uses the stop-and-copy code for its basic algorithm":

* generation 0 is the nursery (the *ephemeral area*); all allocation
  happens there;
* a collection of generations 0..i promotes every survivor into
  generation i+1 (Larceny's promoting collections promote *all* live
  objects, which is why §8.4's situations 1 and 2 never arise);
* the oldest generation is collected in place, stop-and-copy style,
  and may grow to maintain a target inverse load factor (this is the
  "dynamic area" whose size Table 3's experiment adjusted);
* each generation keeps a remembered set of slots in that generation
  that may point into younger generations, fed by the write barrier;
  a collection of generations 0..i seeds its trace with the entries of
  the remembered sets of generations i+1.. whose slots still point
  into the condemned region, pruning the stale ones (§8.4).

The collector embodies the conventional heuristic the paper critiques:
it always condemns the *youngest* generations, betting that they hold
the most garbage.  Under the radioactive decay model that bet is
systematically wrong, which the ``antiprediction`` experiment
demonstrates.
"""

from __future__ import annotations

from typing import Sequence

from repro.gc.collector import Collector, HeapExhausted
from repro.heap.heap import SimulatedHeap
from repro.heap.object_model import HeapObject
from repro.heap.remset import RememberedSet
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["GenerationalCollector"]


class GenerationalCollector(Collector):
    """A conventional N-generation stop-and-copy collector.

    Args:
        heap: the simulated heap.
        roots: the machine root set.
        generation_words: capacity of each generation, youngest first.
            At least two generations are required.
        auto_expand_oldest: allow the oldest generation (the dynamic
            area) to grow so that it is at least ``oldest_load_factor``
            times its live storage after a full collection.
        oldest_load_factor: target inverse load factor for the oldest
            generation.
        promotion_threshold: collections an object must survive in its
            generation before being promoted.  1 (the default) is
            Larceny's promote-all policy; higher values give the
            tenuring policies of Ungar-style scavengers (the paper's
            §9 cites the promotion-policy literature) at the cost of
            re-copying under-age survivors within their generation.
        tenuring_overflow_fraction: if under-age survivors would
            occupy more than this fraction of their generation, they
            are promoted anyway (Ungar & Jackson's tenuring overflow),
            so tenuring cannot wedge the nursery.
    """

    name = "generational"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        generation_words: Sequence[int],
        *,
        auto_expand_oldest: bool = True,
        oldest_load_factor: float = 2.0,
        promotion_threshold: int = 1,
        tenuring_overflow_fraction: float = 0.5,
    ) -> None:
        super().__init__(heap, roots)
        if promotion_threshold < 1:
            raise ValueError(
                f"promotion threshold must be at least 1, got "
                f"{promotion_threshold!r}"
            )
        if not 0.0 < tenuring_overflow_fraction <= 1.0:
            raise ValueError(
                f"tenuring overflow fraction must be in (0, 1], got "
                f"{tenuring_overflow_fraction!r}"
            )
        if len(generation_words) < 2:
            raise ValueError(
                f"need at least 2 generations, got {len(generation_words)}"
            )
        if any(words <= 0 for words in generation_words):
            raise ValueError(
                f"generation sizes must be positive, got {generation_words!r}"
            )
        if oldest_load_factor <= 1.0:
            raise ValueError(
                f"load factor must exceed 1, got {oldest_load_factor!r}"
            )
        self.spaces: list[Space] = [
            heap.add_space(f"gen-{index}", words)
            for index, words in enumerate(generation_words)
        ]
        self.remsets: list[RememberedSet] = [
            RememberedSet(f"remset-gen-{index}")
            for index in range(len(generation_words))
        ]
        self._generation_of: dict[str, int] = {
            space.name: index for index, space in enumerate(self.spaces)
        }
        self.auto_expand_oldest = auto_expand_oldest
        self.oldest_load_factor = oldest_load_factor
        self.promotion_threshold = promotion_threshold
        self.tenuring_overflow_fraction = tenuring_overflow_fraction
        #: Collections survived in the current generation, per object.
        #: Only consulted when promotion_threshold > 1.
        self._survival_counts: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------

    @property
    def generation_count(self) -> int:
        return len(self.spaces)

    @property
    def nursery(self) -> Space:
        return self.spaces[0]

    @property
    def oldest(self) -> Space:
        return self.spaces[-1]

    def generation_index(self, obj: HeapObject) -> int | None:
        """The generation an object resides in, or None if unmanaged."""
        if obj.space is None:
            return None
        return self._generation_of.get(obj.space.name)

    def managed_spaces(self) -> frozenset[Space]:
        return frozenset(self.spaces)

    def export_state(self) -> dict:
        return {
            "generation_capacities": [
                space.capacity for space in self.spaces
            ],
            "remsets": [remset.export_state() for remset in self.remsets],
            "auto_expand_oldest": self.auto_expand_oldest,
            "oldest_load_factor": self.oldest_load_factor,
            "promotion_threshold": self.promotion_threshold,
            "tenuring_overflow_fraction": self.tenuring_overflow_fraction,
            "survival_counts": sorted(
                [oid, count] for oid, count in self._survival_counts.items()
            ),
        }

    def import_state(self, state: dict) -> None:
        for space, capacity in zip(
            self.spaces, state["generation_capacities"]
        ):
            space.capacity = capacity
        for remset, remset_state in zip(self.remsets, state["remsets"]):
            remset.import_state(remset_state)
        self.auto_expand_oldest = state["auto_expand_oldest"]
        self.oldest_load_factor = state["oldest_load_factor"]
        self.promotion_threshold = state["promotion_threshold"]
        self.tenuring_overflow_fraction = state["tenuring_overflow_fraction"]
        self._survival_counts = {
            int(oid): int(count) for oid, count in state["survival_counts"]
        }

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _reserve(self, size: int) -> Space:
        # Hot path: hoist the nursery property and inline Space.fits.
        nursery = self.spaces[0]
        capacity = nursery.capacity
        if capacity is not None and nursery.used + size > capacity:
            upto = self._collect_for(size)
            if (
                nursery.capacity is not None
                and nursery.used + size > nursery.capacity
            ):
                # Emergency full collection: promote everything out of
                # the nursery (tenuring stayers included) before giving
                # up.  Skipped when the collection above already was
                # full — repeating it cannot free more.
                if upto < self.generation_count - 1:
                    self.collect()
                if (
                    nursery.capacity is not None
                    and nursery.used + size > nursery.capacity
                ):
                    raise HeapExhausted(self, size)
        return nursery

    def _collect_for(self, pending: int) -> int:
        """Collect enough generations that the nursery can satisfy a
        ``pending``-word allocation; returns the condemned prefix index.

        The condemned prefix 0..i is the smallest for which generation
        i+1 is guaranteed to have room for every possible survivor
        (conservatively, everything currently resident in 0..i); if no
        prefix qualifies, a full collection runs.
        """
        spaces = self.spaces
        last = len(spaces) - 1
        worst_case = 0
        for i in range(last):
            worst_case += spaces[i].used
            if spaces[i + 1].free >= worst_case:
                self.collect_generations(i)
                return i
        self.collect_generations(last)
        return last

    # ------------------------------------------------------------------
    # Write barrier
    # ------------------------------------------------------------------

    def remember_store(
        self, obj: HeapObject, slot: int, target: HeapObject | None
    ) -> None:
        """Remember old-to-young pointer stores (situation 3 of §8.4)."""
        if target is None:
            return
        src_gen = self.generation_index(obj)
        dst_gen = self.generation_index(target)
        if src_gen is None or dst_gen is None:
            return
        if src_gen > dst_gen:
            self.remsets[src_gen].record_barrier(obj.obj_id, slot)
            self.stats.remset_entries_created += 1

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """A full collection of every generation."""
        self.collect_generations(self.generation_count - 1)

    def collect_generations(self, upto: int) -> None:
        """Collect generations 0..upto, promoting survivors to upto+1.

        The oldest generation, when included, is collected in place.
        """
        if not 0 <= upto < self.generation_count:
            raise ValueError(
                f"generation index out of range: {upto} of "
                f"{self.generation_count}"
            )
        heap = self.heap
        region_list = self.spaces[:upto + 1]
        region = set(region_list)
        used_before = sum(space.used for space in region_list)
        if self.metrics is not None:
            self.metrics.event(
                "collection-start",
                kind=(
                    "full"
                    if upto == self.generation_count - 1
                    else f"minor-0..{upto}"
                ),
                clock=heap.clock,
                upto=upto,
            )

        seeds = self._root_ids()
        seeds.extend(self._remset_seeds(upto, region))

        # Trace without charging mark work: this collector's work is the
        # copying below, and the paper's single "marked (or copied, or
        # whatever)" measure must not double-count.
        marked = self._trace_region(region, seeds, count_work=False)

        # Free the dead first so a full collection makes room in the
        # oldest generation before younger survivors move into it.
        # The partition kernel classifies each space in residence order.
        # Survivors are promoted (copied) to generation upto+1; the
        # oldest generation's survivors are "copied" in place.  Either
        # way the copy cost is the survivor's size, as in Larceny's
        # uniform stop-and-copy implementation.  With a promotion
        # threshold above 1, under-age survivors stay in (are
        # re-copied within) their generation, subject to tenuring
        # overflow.
        full = upto == self.generation_count - 1
        target = self.oldest if full else self.spaces[upto + 1]
        promote_all = full or self.promotion_threshold == 1
        reclaimed = 0
        if promote_all:
            # Promote-all needs no per-object age or size: survivor
            # words per space are exactly the space's post-partition
            # occupancy, and every survivor outside the target moves.
            # (A minor target lies outside the condemned region, so
            # there are no stayers; a full collection clears the
            # remembered sets wholesale below, ages moot either way.)
            mover_ids: list[int] = []
            live = 0
            for space in region_list:
                ids, dead_words = heap.partition_space(space, marked)
                reclaimed += dead_words
                live += space.used
                if space is not target:
                    mover_ids.extend(ids)
            incoming = live - (target.used if full else 0)
            has_stayers = False
        else:
            size_of = heap.size_of
            survivors: list[tuple[int, int, Space]] = []
            for space in region_list:
                ids, dead_words = heap.partition_space(space, marked)
                survivors.extend((oid, size_of(oid), space) for oid in ids)
                reclaimed += dead_words
            if self._survival_counts:
                # Objects only die in a collection of their own region,
                # so dropping every dead id restores exactly the
                # invariant the per-object classification maintained:
                # counts never name dead objects.
                contains = heap.contains_id
                counts = self._survival_counts
                for oid in [oid for oid in counts if not contains(oid)]:
                    del counts[oid]
            movers, stayers = self._partition_survivors(
                survivors, target, full
            )
            incoming = sum(size for _, size, _ in movers)
            live = sum(size for _, size, _ in survivors)
            mover_ids = [oid for oid, _, _ in movers]
            has_stayers = bool(stayers)
        if incoming > target.free:
            if full and self.auto_expand_oldest:
                if self.metrics is not None:
                    self.metrics.event(
                        "heap-expansion",
                        space=target.name,
                        old_capacity=target.capacity or 0,
                        new_capacity=(target.capacity or 0)
                        + (incoming - target.free),
                    )
                target.capacity = (target.capacity or 0) + (
                    incoming - target.free
                )
            else:
                raise HeapExhausted(self, incoming, phase="promotion")
        self.stats.words_copied += live
        moved_words = heap.move_ids(mover_ids, target)
        survival_counts = self._survival_counts
        if survival_counts:
            for oid in mover_ids:
                survival_counts.pop(oid, None)
        self.stats.words_promoted += moved_words
        if self.metrics is not None and moved_words:
            self.metrics.event(
                "promotion",
                target=target.name,
                words=moved_words,
                objects=len(mover_ids),
            )

        if full:
            # §8.4: a full collection empties the remembered set; every
            # survivor is now in the oldest generation, ages moot.
            for remset in self.remsets:
                remset.clear()
            self._survival_counts.clear()
        else:
            self._maintain_remsets_after_minor(upto, mover_ids, has_stayers)

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        if full:
            self.stats.major_collections += 1
        else:
            self.stats.minor_collections += 1
        self.stats.record_pause(
            clock=heap.clock,
            kind="full" if full else f"minor-0..{upto}",
            work=live,
            reclaimed=reclaimed,
            live=live,
        )
        if full and self.auto_expand_oldest:
            minimum = int(live * self.oldest_load_factor)
            if (self.oldest.capacity or 0) < minimum:
                if self.metrics is not None:
                    self.metrics.event(
                        "heap-expansion",
                        space=self.oldest.name,
                        old_capacity=self.oldest.capacity or 0,
                        new_capacity=minimum,
                    )
                self.oldest.capacity = minimum
        self._finish_collection()

    def on_static_promotion(self) -> None:
        for remset in self.remsets:
            remset.clear()
        self._survival_counts.clear()

    def _partition_survivors(
        self,
        survivors: list[tuple[int, int, Space]],
        target: Space,
        full: bool,
    ) -> tuple[
        list[tuple[int, int, Space]], list[tuple[int, int, Space]]
    ]:
        """Split ``(id, size, space)`` survivors into movers and stayers.

        With the default promote-all threshold everything moves (the
        Larceny policy).  Otherwise an object moves once it has
        survived ``promotion_threshold`` collections of its
        generation, or when its cohort of under-age survivors would
        occupy too much of the generation (tenuring overflow).
        """
        already_there = [entry for entry in survivors if entry[2] is target]
        candidates = [entry for entry in survivors if entry[2] is not target]
        if full or self.promotion_threshold == 1:
            return candidates, already_there

        movers: list[tuple[int, int, Space]] = []
        stayers = already_there[:]
        stayer_words: dict[str, int] = {}
        undecided: list[tuple[int, int, Space]] = []
        for entry in candidates:
            oid, size, space = entry
            count = self._survival_counts.get(oid, 0) + 1
            if count >= self.promotion_threshold:
                movers.append(entry)
            else:
                self._survival_counts[oid] = count
                undecided.append(entry)
                stayer_words[space.name] = (
                    stayer_words.get(space.name, 0) + size
                )
        # Tenuring overflow, per source generation.
        overflowing = {
            name
            for name, words in stayer_words.items()
            if words
            > self.tenuring_overflow_fraction
            * (self.heap.space(name).capacity or words)
        }
        for entry in undecided:
            if entry[2].name in overflowing:
                movers.append(entry)
            else:
                stayers.append(entry)
        return movers, stayers

    def _maintain_remsets_after_minor(
        self, upto: int, mover_ids: list[int], has_stayers: bool
    ) -> None:
        """Restore remembered-set completeness after a minor collection.

        With promote-all, generations 0..upto are empty afterwards and
        their remembered sets can simply be cleared.  With tenuring,
        stayers keep their generation populated: their existing
        entries are pruned (not dropped), and each *promoted* object is
        scanned for pointers into still-younger generations — the
        situation-2 analogue that promote-all never needs.
        """
        heap = self.heap
        generation_of = self._generation_of
        if not has_stayers:
            for index in range(upto + 1):
                self.remsets[index].clear()
            return
        for index in range(upto + 1):

            def source_still_here(entry: tuple[int, int]) -> bool:
                space = heap.space_if_live(entry[0])
                return (
                    space is not None
                    and generation_of.get(space.name) == index
                )

            pruned = self.remsets[index].prune(source_still_here)
            self.stats.remset_entries_pruned += pruned
        # Every mover now resides in generation upto+1 (minor target).
        gen = upto + 1
        remset = self.remsets[gen]
        for oid in mover_ids:
            for slot, ref in heap.ref_slots(oid):
                space = heap.space_if_live(ref)
                if space is None:
                    continue
                target_gen = generation_of.get(space.name)
                if target_gen is not None and target_gen < gen:
                    remset.record_promotion(oid, slot)
                    self.stats.remset_entries_created += 1

    def _remset_seeds(self, upto: int, region: set[Space]) -> list[int]:
        """Seed ids from older generations' remembered sets.

        Each entry is re-examined (§8.4): if the slot still points into
        the condemned region the target is a seed; otherwise the entry
        is pruned.
        """
        seeds: list[int] = []
        heap = self.heap
        slot_ref = heap.slot_ref
        space_if_live = heap.space_if_live
        for index in range(upto + 1, self.generation_count):
            remset = self.remsets[index]
            if not len(remset):
                continue
            keep: set[tuple[int, int]] = set()
            for entry in list(remset.entries()):
                self.stats.roots_traced += 1
                probe = slot_ref(entry[0], entry[1])
                if probe is None:
                    continue
                ref = probe[1]
                target_space = space_if_live(ref)
                if target_space is None or target_space not in region:
                    continue
                seeds.append(ref)
                keep.add(entry)
            pruned = remset.prune(keep.__contains__)
            self.stats.remset_entries_pruned += pruned
        return seeds

    def describe(self) -> str:
        sizes = ", ".join(str(space.capacity) for space in self.spaces)
        return f"generational ({self.generation_count} gens: {sizes} words)"
