"""The collector interface all garbage collectors implement.

A collector owns part of the simulated heap's geometry (its spaces),
provides allocation, decides when to collect, and implements the write
barrier's remember-store hook.  The mutator-facing surface is
deliberately small:

* :meth:`Collector.allocate` — allocate, collecting first if needed;
* :meth:`Collector.collect` — an explicit full collection;
* :meth:`Collector.remember_store` — called by the write barrier on
  every pointer store.

Collectors never inspect object contents beyond reference slots, and
never inspect object ages — the non-predictive collector's defining
property (Section 4: "Neither does it keep track of the ages of
objects") is enforced structurally by this interface: ``birth`` is used
only by the measurement layer in :mod:`repro.trace`.
"""

from __future__ import annotations

import abc
from typing import Callable, Iterable

from repro.gc.stats import GcStats
from repro.heap.heap import SimulatedHeap
from repro.metrics.instrument import active_session
from repro.heap.object_model import HeapObject
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["Collector", "HeapExhausted", "PostCollectionHook"]

#: Signature of the optional post-collection hook (checked mode).
PostCollectionHook = Callable[["Collector"], None]


class HeapExhausted(Exception):
    """Collection freed too little memory to satisfy an allocation.

    Raised only after the collector has exhausted its degradation
    policy (emergency full collection, then any bounded expansion it
    allows), so catching it is a *final* verdict, not a retryable one.
    The exception carries a per-space occupancy snapshot
    (:meth:`repro.heap.heap.SimulatedHeap.occupancy`) captured at
    raise time, so experiment logs show exactly which space wedged and
    how full every other one was.
    """

    def __init__(
        self,
        collector: "Collector",
        requested: int,
        *,
        phase: str = "allocate",
    ) -> None:
        snapshot = collector.heap.occupancy()
        spaces = ", ".join(
            f"{entry['name']}={entry['used']}/{entry['capacity']}"
            for entry in snapshot["spaces"]
        )
        super().__init__(
            f"{collector.name} cannot satisfy a request of "
            f"{requested} words even after collecting "
            f"(phase {phase}; occupancy: {spaces})"
        )
        self.collector = collector
        self.requested = requested
        self.phase = phase
        #: Per-space occupancy diagnostics, JSON-able.
        self.snapshot = snapshot


class Collector(abc.ABC):
    """Base class for all collectors.

    Subclasses create their spaces in ``__init__`` and implement
    allocation and collection.  ``stats`` accumulates work accounting
    for the collector's whole lifetime.
    """

    #: Short machine-readable name ("mark-sweep", "non-predictive", ...).
    name: str = "abstract"

    def __init__(self, heap: SimulatedHeap, roots: RootSet) -> None:
        self.heap = heap
        self.roots = roots
        self.stats = GcStats()
        #: Optional checked-mode hook, invoked after every completed
        #: collection (see :mod:`repro.verify.audit`).  ``None`` keeps
        #: collections hook-free, which is the production default.
        self.post_collection_hook: PostCollectionHook | None = None
        #: Optional metrics recorder (:mod:`repro.metrics`).  ``None``
        #: — the default — disables the whole instrumentation plane;
        #: every site that consults it is a per-collection cold path,
        #: so disabled runs pay nothing on allocation.  A collector
        #: constructed inside an active metrics session self-attaches.
        session = active_session()
        self.metrics = session.attach(self) if session is not None else None

    # ------------------------------------------------------------------
    # Mutator interface
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def _reserve(self, size: int) -> Space:
        """Return a space with room for ``size`` words, collecting,
        expanding, or degrading first as the collector's policy allows.

        This is each collector's allocation policy in one place;
        :meth:`allocate`, :meth:`allocate_id` and
        :meth:`reserve_window` all route through it.

        Raises:
            HeapExhausted: if no collection can free enough space.
        """

    def allocate(
        self, size: int, field_count: int = 0, kind: str = "data"
    ) -> HeapObject:
        """Allocate an object, collecting first if necessary.

        Raises:
            HeapExhausted: if no collection can free enough space.
        """
        space = self._reserve(size)
        obj = self.heap.allocate(size, field_count, space, kind)
        stats = self.stats
        stats.words_allocated += size
        stats.objects_allocated += 1
        return obj

    def allocate_id(
        self, size: int, field_count: int = 0, kind: str = "data"
    ) -> int:
        """Allocate an object and return its raw id (no handle).

        Identical observable behaviour to :meth:`allocate`; the id form
        is what throughput-critical callers (the benchmark executor)
        use on the flat backend, where handle construction is pure
        overhead.
        """
        space = self._reserve(size)
        obj_id = self.heap.allocate_id(size, field_count, space, kind)
        stats = self.stats
        stats.words_allocated += size
        stats.objects_allocated += 1
        return obj_id

    def reserve_window(self, max_objects: int, size: int = 1) -> tuple[int, int]:
        """Allocate a bump window: up to ``max_objects`` field-less
        ``data`` objects of ``size`` words each, in one reservation.

        Returns the half-open id range.  The window covers at most the
        free room of the reserved space, so for uniform object sizes a
        windowed run triggers exactly the same collections at exactly
        the same clocks as ``max_objects`` individual ``allocate_id``
        calls — only intermediate clock *readings* differ, and nothing
        reads the clock mid-window.  The flat backend materializes the
        window at C speed, which is where its allocation-throughput
        advantage comes from.
        """
        if max_objects <= 0:
            raise ValueError(
                f"window must cover >= 1 object, got {max_objects!r}"
            )
        space = self._reserve(size)
        count = space.free // size
        if count > max_objects:
            count = max_objects
        first, end = self.heap.bulk_allocate(count, size, space)
        stats = self.stats
        stats.words_allocated += count * size
        stats.objects_allocated += count
        return first, end

    @abc.abstractmethod
    def collect(self) -> None:
        """Perform a full collection of everything this collector manages."""

    def remember_store(
        self, obj: HeapObject, slot: int, target: HeapObject | None
    ) -> None:
        """Write-barrier hook; default is to remember nothing.

        Called for every mutator store (``target`` is None when the
        new value is not a pointer — the snapshot-at-the-beginning
        barrier needs to see those deletions too).  Non-generational
        stop-the-world collectors need no remembered sets, so the
        default is a no-op.
        """

    def on_static_promotion(self) -> None:
        """Reset collector state after a full static promotion (§8.4).

        "A full collection empties the remembered set and promotes
        all live storage to the static area."  The machine moves the
        objects; collectors with remembered sets or step state
        override this to empty them.
        """

    def managed_spaces(self) -> frozenset[Space] | None:
        """The spaces this collector allocates into and collects.

        The heap auditor (:mod:`repro.verify.audit`) uses this to scope
        its space-membership and stats-conservation checks.  ``None``
        means the collector cannot enumerate its spaces (or shares the
        heap with other allocators), which disables those checks.
        """
        return None

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------

    def export_state(self) -> dict:
        """Collector-private mutable state as a JSON-serializable dict.

        Everything the constructor does not rebuild identically must be
        here: capacities that grew, remembered sets, step order, open
        mark-cycle state.  Heap contents, roots, and ``stats`` are
        serialized separately by :mod:`repro.resilience.snapshot`.
        """
        raise NotImplementedError(
            f"{self.name} does not support checkpoint/restore"
        )

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output onto a freshly
        constructed collector of the same kind and geometry.

        Runs *before* the heap contents are imported: it may only
        touch content-independent structure (space capacities and
        ordering, remembered sets, cycle flags), never resident
        objects.
        """
        raise NotImplementedError(
            f"{self.name} does not support checkpoint/restore"
        )

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _finish_collection(self) -> None:
        """Observe metrics and run the checked-mode hook; collectors
        call this at the end of every collection, after all stats and
        structural updates.  Metrics are observed first so telemetry
        records the collection even when a checked-mode audit then
        rejects the resulting heap."""
        if self.metrics is not None:
            self.metrics.observe_collection(self)
        if self.post_collection_hook is not None:
            self.post_collection_hook(self)

    def _record_allocation(self, obj: HeapObject) -> None:
        self.stats.words_allocated += obj.size
        self.stats.objects_allocated += 1

    def _trace_region(
        self,
        region: set[Space],
        seed_ids: Iterable[int],
        *,
        count_work: bool = True,
    ) -> set[int]:
        """Mark the objects of ``region`` reachable from ``seed_ids``.

        Objects outside the region terminate the trace: they are
        treated as boundary roots and their fields are *not* scanned
        (any interesting pointers they hold must have been provided via
        ``seed_ids``, e.g. from a remembered set).  This is exactly the
        partial-collection tracing discipline of Section 8.

        Returns the ids of marked region objects.  When ``count_work``
        is true, each marked object's size is added to
        ``stats.words_marked``.
        """
        marked, words_marked = self.heap.trace_region(region, seed_ids)
        if count_work:
            self.stats.words_marked += words_marked
        return marked

    def _root_ids(self) -> list[int]:
        """Snapshot the machine root ids, accounting the tracing cost."""
        ids = list(self.roots.ids())
        self.stats.roots_traced += len(ids)
        return ids

    def describe(self) -> str:
        """One-line human-readable description for logs and the CLI."""
        return f"{self.name} collector"
