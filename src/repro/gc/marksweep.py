"""Non-generational mark/sweep collection.

This is the paper's analytical baseline: Section 5 derives its
mark/cons ratio as ``1 / (L - 1)`` for inverse load factor ``L``.  The
collector manages a single bounded space; when an allocation does not
fit it marks everything reachable from the roots, sweeps the space,
and retries.

Sizing follows the paper's experimental setup: either a fixed heap
size, or (the default) automatic sizing that keeps the heap at
``load_factor`` times the live storage after each collection, which is
how Larceny's collectors "chose" their heap sizes in Table 3.
"""

from __future__ import annotations

from repro.gc.collector import Collector, HeapExhausted
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet
from repro.heap.space import Space

__all__ = ["MarkSweepCollector"]


class MarkSweepCollector(Collector):
    """A classic stop-the-world, non-generational mark/sweep collector.

    Args:
        heap: the simulated heap (the collector registers one space).
        roots: the machine root set.
        heap_words: capacity of the heap space in words.
        auto_expand: when true, the heap grows after a collection if
            the surviving live storage exceeds ``capacity /
            load_factor``, keeping the inverse load factor at least
            ``load_factor``.
        load_factor: target inverse load factor ``L`` for auto
            expansion (heap size as a multiple of live storage).
        max_heap_words: optional hard cap on expansion.  When growth
            would exceed it the heap grows only up to the cap, and an
            allocation that still does not fit raises a structured
            :class:`~repro.gc.collector.HeapExhausted` instead of
            expanding without bound.
    """

    name = "mark-sweep"

    def __init__(
        self,
        heap: SimulatedHeap,
        roots: RootSet,
        heap_words: int,
        *,
        auto_expand: bool = True,
        load_factor: float = 2.0,
        max_heap_words: int | None = None,
    ) -> None:
        super().__init__(heap, roots)
        if heap_words <= 0:
            raise ValueError(f"heap size must be positive, got {heap_words!r}")
        if load_factor <= 1.0:
            raise ValueError(
                f"load factor must exceed 1, got {load_factor!r}"
            )
        if max_heap_words is not None and max_heap_words < heap_words:
            raise ValueError(
                f"expansion cap {max_heap_words} is below the initial "
                f"heap size {heap_words}"
            )
        self.space = heap.add_space("ms-heap", heap_words)
        self.auto_expand = auto_expand
        self.load_factor = load_factor
        self.max_heap_words = max_heap_words

    def managed_spaces(self) -> frozenset:
        return frozenset((self.space,))

    def export_state(self) -> dict:
        return {
            "space_capacity": self.space.capacity,
            "auto_expand": self.auto_expand,
            "load_factor": self.load_factor,
            "max_heap_words": self.max_heap_words,
        }

    def import_state(self, state: dict) -> None:
        self.space.capacity = state["space_capacity"]
        self.auto_expand = state["auto_expand"]
        self.load_factor = state["load_factor"]
        self.max_heap_words = state["max_heap_words"]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def _reserve(self, size: int) -> "Space":
        # Hot path: inline Space.fits.
        space = self.space
        capacity = space.capacity
        if capacity is not None and space.used + size > capacity:
            self.collect()
            if (
                space.capacity is not None
                and space.used + size > space.capacity
            ):
                # The collection above was the emergency step; what is
                # left of the policy is bounded expansion, then a
                # structured failure with occupancy diagnostics.
                if self.auto_expand:
                    self._expand(size)
                if (
                    space.capacity is not None
                    and space.used + size > space.capacity
                ):
                    raise HeapExhausted(self, size)
        return space

    def _expand(self, pending: int) -> None:
        """Grow the heap to restore the target inverse load factor.

        Growth never exceeds ``max_heap_words``; an allocation that
        still cannot fit fails over to :class:`HeapExhausted` at the
        call site.
        """
        needed = self.space.used + pending
        target = max(int(needed * self.load_factor), self.space.capacity or 0)
        if self.max_heap_words is not None:
            target = min(target, self.max_heap_words)
        if target > (self.space.capacity or 0):
            if self.metrics is not None:
                self.metrics.event(
                    "heap-expansion",
                    space=self.space.name,
                    old_capacity=self.space.capacity or 0,
                    new_capacity=target,
                )
            self.space.capacity = target

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------

    def collect(self) -> None:
        """Mark everything reachable from the roots, then sweep."""
        if self.metrics is not None:
            self.metrics.event(
                "collection-start", kind="full", clock=self.heap.clock
            )
        work_before = self.stats.words_marked
        marked = self._trace_region({self.space}, self._root_ids())

        # Sweep: walk every resident object; dead ones are freed.  The
        # sweep examines the whole used portion of the heap, which we
        # account separately from marking (sweeping is cheap per word
        # but not free; the mark/cons ratio deliberately excludes it,
        # as in the paper).
        self.stats.words_swept += self.space.used
        reclaimed = self.heap.free_unmarked(self.space, marked)
        live = self.space.used

        self.stats.words_reclaimed += reclaimed
        self.stats.collections += 1
        self.stats.major_collections += 1
        self.stats.record_pause(
            clock=self.heap.clock,
            kind="full",
            work=self.stats.words_marked - work_before,
            reclaimed=reclaimed,
            live=live,
        )
        if self.auto_expand:
            minimum = int(live * self.load_factor)
            if self.max_heap_words is not None:
                minimum = min(minimum, self.max_heap_words)
            if (self.space.capacity or 0) < minimum:
                if self.metrics is not None:
                    self.metrics.event(
                        "heap-expansion",
                        space=self.space.name,
                        old_capacity=self.space.capacity or 0,
                        new_capacity=minimum,
                    )
                self.space.capacity = minimum
        self._finish_collection()

    def describe(self) -> str:
        return (
            f"mark-sweep, heap {self.space.capacity} words, "
            f"L>={self.load_factor if self.auto_expand else 'fixed'}"
        )
