"""Garbage collectors: the paper's non-predictive collector and baselines."""

from repro.gc.collector import Collector, HeapExhausted
from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.gc.stats import GcStats, PauseRecord
from repro.gc.stopcopy import StopAndCopyCollector

__all__ = [
    "Collector",
    "GcStats",
    "GenerationalCollector",
    "HeapExhausted",
    "HybridCollector",
    "MarkSweepCollector",
    "NonPredictiveCollector",
    "PauseRecord",
    "StopAndCopyCollector",
]
