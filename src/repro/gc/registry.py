"""The collector registry: one catalogue of every collector kind.

Every surface that enumerates collectors — the CLI, the differential
verifier, the benchmark matrix, the chaos harness, the metrics sweep —
used to carry its own list of kinds and its own construction if-chain.
This module is now the single source of truth: :data:`COLLECTOR_KINDS`
names every kind, :func:`make_collector` builds one from a
:class:`GcGeometry`, and :func:`collector_factory` wraps that as the
``Machine``-compatible ``(heap, roots) -> Collector`` callable.

Adding a collector means adding it here (a name, an ``elif`` arm) and
regenerating the golden artifacts; every registry consumer picks it up
without edits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.gc.collector import Collector
from repro.gc.concurrent import ConcurrentCollector
from repro.gc.generational import GenerationalCollector
from repro.gc.hybrid import HybridCollector
from repro.gc.incremental import IncrementalCollector
from repro.gc.marksweep import MarkSweepCollector
from repro.gc.nonpredictive import NonPredictiveCollector
from repro.gc.stopcopy import StopAndCopyCollector
from repro.heap.heap import SimulatedHeap
from repro.heap.roots import RootSet

__all__ = [
    "COLLECTOR_KINDS",
    "GcGeometry",
    "collector_factory",
    "make_collector",
]

#: Every collector kind the registry can build, in canonical order.
#: "mark-sweep" stays first: the differential and budget-invariance
#: suites use it as the reference implementation.
COLLECTOR_KINDS: tuple[str, ...] = (
    "mark-sweep",
    "stop-and-copy",
    "generational",
    "non-predictive",
    "hybrid",
    "incremental",
    "concurrent",
)


@dataclass(frozen=True)
class GcGeometry:
    """Scaled-down heap geometry for the Table 3 experiment.

    The paper used a 1 MB youngest generation over programs with
    1-10 MB peaks; the simulator default keeps a comparable
    nursery-to-peak ratio at word scale.
    """

    nursery_words: int = 8_192
    semispace_words: int = 16_384
    step_words: int = 4_096
    step_count: int = 8
    load_factor: float = 2.0
    #: The paper adjusted the generational collector's dynamic area
    #: "to ensure that the generational collector would touch a little
    #: less storage than the stop-and-copy collector"; a lighter load
    #: factor on the oldest generation is that adjustment.
    gen_oldest_load_factor: float = 3.0
    #: Mark words per incremental slice; ``None`` drains the whole
    #: wavefront in one pause (the degenerate stop-the-world budget).
    slice_budget: int | None = 64
    #: Worker processes for the concurrent collector's marker; ``0``
    #: runs the marker inline at the handoff, which is the
    #: deterministic reference mode the oracles replay.
    marker_workers: int = 0
    #: Grow spaces by the load factor when live storage crowds them.
    #: ``False`` pins the geometry: allocation beyond it surfaces as a
    #: graceful :class:`~repro.gc.collector.HeapExhausted` — the mode
    #: the multi-tenant service runs, where one tenant outgrowing its
    #: lease must get backpressure rather than more of the host's
    #: memory.  (The non-predictive and hybrid collectors have fixed
    #: step arenas and already behave this way.)
    auto_expand: bool = True

    def scaled(
        self, numerator: int, denominator: int, *, floor: int = 64
    ) -> "GcGeometry":
        """This geometry with every space scaled by a rational factor.

        The multi-tenant service hosts thousands of heaps per process;
        each tenant gets the default shape shrunk (or grown) by
        ``numerator/denominator``, with ``floor`` words as the minimum
        space size so tiny tenants still fit their largest objects.
        The slice budget scales too (floored at 8 words) so the
        incremental collector's pause/throughput trade-off keeps its
        proportions at any scale; step count, load factors, and marker
        workers are shape, not size, and pass through unchanged.
        """
        if numerator < 1 or denominator < 1:
            raise ValueError(
                f"scale must be a positive rational, got "
                f"{numerator}/{denominator}"
            )

        def scale(words: int) -> int:
            return max(floor, words * numerator // denominator)

        budget = self.slice_budget
        if budget is not None:
            budget = max(8, budget * numerator // denominator)
        return GcGeometry(
            nursery_words=scale(self.nursery_words),
            semispace_words=scale(self.semispace_words),
            step_words=scale(self.step_words),
            step_count=self.step_count,
            load_factor=self.load_factor,
            gen_oldest_load_factor=self.gen_oldest_load_factor,
            slice_budget=budget,
            marker_workers=self.marker_workers,
            auto_expand=self.auto_expand,
        )


def make_collector(
    kind: str,
    heap: SimulatedHeap,
    roots: RootSet,
    geometry: GcGeometry,
) -> Collector:
    """Build one collector of ``kind`` over ``heap`` with ``geometry``."""
    if kind == "mark-sweep":
        return MarkSweepCollector(
            heap,
            roots,
            2 * geometry.semispace_words,
            load_factor=geometry.load_factor,
            auto_expand=geometry.auto_expand,
        )
    if kind == "stop-and-copy":
        return StopAndCopyCollector(
            heap,
            roots,
            geometry.semispace_words,
            load_factor=geometry.load_factor,
            auto_expand=geometry.auto_expand,
        )
    if kind == "generational":
        return GenerationalCollector(
            heap,
            roots,
            [geometry.nursery_words, 4 * geometry.nursery_words],
            oldest_load_factor=geometry.gen_oldest_load_factor,
            auto_expand_oldest=geometry.auto_expand,
        )
    if kind == "non-predictive":
        return NonPredictiveCollector(
            heap, roots, geometry.step_count, geometry.step_words
        )
    if kind == "hybrid":
        return HybridCollector(
            heap,
            roots,
            geometry.nursery_words,
            geometry.step_count,
            geometry.step_words,
        )
    if kind == "incremental":
        # Same total capacity as mark-sweep, so pause comparisons
        # between the two measure incrementality, not heap size.
        return IncrementalCollector(
            heap,
            roots,
            2 * geometry.semispace_words,
            slice_budget=geometry.slice_budget,
            load_factor=geometry.load_factor,
            auto_expand=geometry.auto_expand,
        )
    if kind == "concurrent":
        # The incremental geometry with the mark phase off-thread, so
        # pause comparisons between the two measure concurrency.
        return ConcurrentCollector(
            heap,
            roots,
            2 * geometry.semispace_words,
            marker_workers=geometry.marker_workers,
            load_factor=geometry.load_factor,
            auto_expand=geometry.auto_expand,
        )
    raise ValueError(f"unknown collector kind {kind!r}")


def collector_factory(
    kind: str, geometry: GcGeometry | None = None
) -> Callable[[SimulatedHeap, RootSet], Collector]:
    """A machine-compatible factory for one of the registered collectors."""
    geometry = geometry if geometry is not None else GcGeometry()

    def build(heap: SimulatedHeap, roots: RootSet) -> Collector:
        return make_collector(kind, heap, roots, geometry)

    return build
